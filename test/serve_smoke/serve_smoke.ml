(* End-to-end smoke for the cold_serve daemon: boot it in-process on an
   ephemeral loopback port, run a scripted hit/miss/shed/drain mix, and
   byte-compare replayed requests. Rides along with @runtest via the
   @serve-smoke alias, so CI exercises the full socket path — accept loop,
   admission queue, scheduler, replay cache — in about a second. *)

module Server = Cold_serve.Server

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("serve smoke: " ^ m); exit 1) fmt

(* --- tiny blocking client ----------------------------------------------------- *)

type client = { fd : Unix.file_descr; mutable rbuf : string }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; rbuf = "" }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_line c line =
  let s = line ^ "\n" in
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      let w = Unix.write c.fd b off len in
      go (off + w) (len - w)
    end
  in
  go 0 (Bytes.length b)

let fill c =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> fail "peer closed mid-frame"
  | n -> c.rbuf <- c.rbuf ^ Bytes.sub_string chunk 0 n

let read_line c =
  let rec go () =
    match String.index_opt c.rbuf '\n' with
    | Some i ->
      let line = String.sub c.rbuf 0 i in
      c.rbuf <- String.sub c.rbuf (i + 1) (String.length c.rbuf - i - 1);
      line
    | None ->
      fill c;
      go ()
  in
  go ()

let read_exact c n =
  while String.length c.rbuf < n do
    fill c
  done;
  let s = String.sub c.rbuf 0 n in
  c.rbuf <- String.sub c.rbuf n (String.length c.rbuf - n);
  s

let read_frame c =
  let header = read_line c in
  match String.split_on_char ' ' header with
  | [ "ok"; id; len ] -> `Ok (id, read_exact c (int_of_string len))
  | "err" :: id :: code :: rest -> `Err (id, code, String.concat " " rest)
  | _ -> fail "bad frame header %S" header

let request c line =
  send_line c line;
  read_frame c

let expect_ok c line =
  match request c line with
  | `Ok (_, payload) -> payload
  | `Err (id, code, msg) -> fail "%S: err %s %s %s" line id code msg

let expect_err_code c line want =
  match request c line with
  | `Err (_, code, _) when code = want -> ()
  | `Err (_, code, msg) -> fail "%S: expected err %s, got %s (%s)" line want code msg
  | `Ok _ -> fail "%S: expected err %s, got ok" line want

(* --- the scripted mix ---------------------------------------------------------- *)

let with_server cfg f =
  match Server.create cfg with
  | Error msg -> fail "cannot start: %s" msg
  | Ok server ->
    let runner = Domain.spawn (fun () -> Server.run server) in
    let result = f (Server.port server) in
    Server.request_drain server;
    Domain.join runner;
    result

let synth ~id ~seed fmt =
  Printf.sprintf "synth %s n=14 seed=%d gens=5 pop=8 perms=1 format=%s" id seed
    fmt

let counter stats name =
  (* Pull "name":<int> out of the flat stats JSON. *)
  let pat = Printf.sprintf "\"%s\":" name in
  let plen = String.length pat in
  let len = String.length stats in
  let rec find i =
    if i + plen > len then fail "stats missing %s in %s" name stats
    else if String.sub stats i plen = pat then i + plen
    else find (i + 1)
  in
  let j = ref (find 0) in
  let st = !j in
  while !j < len && (stats.[!j] = '-' || (stats.[!j] >= '0' && stats.[!j] <= '9')) do
    incr j
  done;
  int_of_string (String.sub stats st (!j - st))

let () =
  let cfg = { Server.default_config with Server.domains = 2 } in
  (* Pass 1: miss, hit, replay byte-compare, then a clean drain. *)
  let first_bytes =
    with_server cfg (fun port ->
        let c = connect port in
        if expect_ok c "ping p0" <> "pong\n" then fail "ping";
        let cold = expect_ok c (synth ~id:"m1" ~seed:5 "edges") in
        let hit = expect_ok c (synth ~id:"m2" ~seed:5 "edges") in
        if cold <> hit then fail "cache hit not byte-identical";
        let other = expect_ok c (synth ~id:"m3" ~seed:6 "edges") in
        if cold = other then fail "distinct seeds collided";
        ignore (expect_ok c (synth ~id:"m4" ~seed:5 "summary"));
        let stats = expect_ok c "stats st1" in
        if counter stats "hits" < 1 then fail "no cache hit recorded";
        if counter stats "misses" < 3 then fail "misses under-counted";
        (* One write, three lines: the admitted job keeps the daemon alive
           past the drain, so "late" deterministically sees [draining]. *)
        send_line c
          (synth ~id:"keep" ~seed:7 "edges"
          ^ "\ndrain d1\n"
          ^ synth ~id:"late" ~seed:8 "edges");
        let acked = ref false and refused = ref false and kept = ref false in
        for _ = 1 to 3 do
          match read_frame c with
          | `Ok ("d1", "draining\n") -> acked := true
          | `Ok ("keep", payload) -> kept := String.length payload > 0
          | `Err ("late", "draining", _) -> refused := true
          | `Ok (id, _) -> fail "unexpected ok %s during drain" id
          | `Err (id, code, msg) -> fail "unexpected err %s %s %s" id code msg
        done;
        if not (!acked && !refused && !kept) then fail "drain mix incomplete";
        close_client c;
        cold)
  in
  (* Pass 2: a restarted daemon re-derives the same bytes (replay), and a
     zero-capacity queue sheds deterministically. *)
  with_server cfg (fun port ->
      let c = connect port in
      let replay = expect_ok c (synth ~id:"r1" ~seed:5 "edges") in
      if replay <> first_bytes then fail "replay after restart differs";
      close_client c);
  with_server
    { cfg with Server.queue_capacity = 0 }
    (fun port ->
      let c = connect port in
      expect_err_code c (synth ~id:"s1" ~seed:5 "edges") "shed";
      let stats = expect_ok c "stats st2" in
      if counter stats "sheds" <> 1 then fail "shed not counted";
      close_client c);
  (* Pass 3: cache persistence. The first daemon computes one answer and
     dumps its cache on drain; a restarted daemon with the same cache file
     must answer the same request from the reloaded cache — a hit, not a
     recomputation — with byte-identical payload. *)
  let cache_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cold_serve_cache_%d.dump" (Unix.getpid ()))
  in
  if Sys.file_exists cache_path then Sys.remove cache_path;
  let pcfg = { cfg with Server.cache_file = Some cache_path } in
  let persisted =
    with_server pcfg (fun port ->
        let c = connect port in
        let p = expect_ok c (synth ~id:"p1" ~seed:9 "edges") in
        close_client c;
        p)
  in
  if not (Sys.file_exists cache_path) then fail "cache file not dumped";
  with_server pcfg (fun port ->
      let c = connect port in
      let stats = expect_ok c "stats st3" in
      if counter stats "cache_entries" < 1 then fail "cache not reloaded";
      let replay = expect_ok c (synth ~id:"p2" ~seed:9 "edges") in
      if replay <> persisted then fail "persisted replay not byte-identical";
      let stats = expect_ok c "stats st4" in
      if counter stats "hits" < 1 then fail "restored entry missed the cache";
      close_client c);
  Sys.remove cache_path;
  print_endline
    "serve smoke passed: miss/hit/shed/drain + byte-exact replay (incl. cache restart)"
