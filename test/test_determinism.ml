(* Insertion-order determinism: results that pass through hash tables must
   not leak the table's layout order. Each test builds the same logical
   input under several shuffled construction orders and asserts identical
   outputs — exact equality, no tolerances, because determinism is the
   property under test. *)

module Prng = Cold_prng.Prng
module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Degree = Cold_metrics.Degree
module Dk = Cold_dk.Dk
module Ba = Cold_baselines.Barabasi_albert
module Fair_share = Cold_sim.Fair_share
module Flow_sim = Cold_sim.Flow_sim
module Tbl = Cold_util.Tbl
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Network = Cold_net.Network

let shuffle rng xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* --- Cold_util.Tbl ------------------------------------------------------------ *)

let test_tbl_sorted_bindings () =
  (* 40 distinct keys scattered over [0, 101): whatever order they are
     inserted in, the sorted view is the same. *)
  let bindings = List.init 40 (fun i -> ((i * 37) mod 101, i)) in
  let expected = List.sort (fun (a, _) (b, _) -> Int.compare a b) bindings in
  let rng = Prng.create 42 in
  for _ = 1 to 10 do
    let tbl = Hashtbl.create 7 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (shuffle rng bindings);
    Alcotest.(check (list (pair int int)))
      "sorted view ignores insertion order" expected
      (Tbl.sorted_bindings ~cmp:Int.compare tbl);
    Alcotest.(check (list int))
      "sorted keys agree" (List.map fst expected)
      (Tbl.sorted_keys ~cmp:Int.compare tbl)
  done

let test_tbl_duplicate_keys () =
  (* Hashtbl.add stacks bindings; the sorted view must present the most
     recent one first (matching Hashtbl.find) under the stable sort. *)
  let tbl = Hashtbl.create 4 in
  Hashtbl.add tbl 1 "old";
  Hashtbl.add tbl 2 "only";
  Hashtbl.add tbl 1 "new";
  Alcotest.(check (list (pair int string)))
    "most recent binding first"
    [ (1, "new"); (1, "old"); (2, "only") ]
    (Tbl.sorted_bindings ~cmp:Int.compare tbl)

let test_tbl_fold_iter_agree () =
  let tbl = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace tbl k (k * k)) [ 5; 1; 9; 3 ];
  let via_fold =
    List.rev (Tbl.fold_sorted ~cmp:Int.compare (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let via_iter = ref [] in
  Tbl.iter_sorted ~cmp:Int.compare (fun k v -> via_iter := (k, v) :: !via_iter) tbl;
  Alcotest.(check (list (pair int int)))
    "fold and iter visit the same sequence" via_fold (List.rev !via_iter);
  Alcotest.(check (list (pair int int)))
    "ascending key order"
    [ (1, 1); (3, 9); (5, 25); (9, 81) ]
    via_fold

(* --- degree / dK metrics ------------------------------------------------------- *)

(* A wheel: hub 0 joined to a rim cycle 1..n-1. Degree-heterogeneous enough
   to populate every dK table with multiple entries. *)
let wheel_edges n =
  List.init (n - 1) (fun i -> (0, i + 1))
  @ List.init (n - 1) (fun i -> (1 + i, 1 + ((i + 1) mod (n - 1))))

let rec ascending cmp = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> cmp a b < 0 && ascending cmp rest

let test_degree_distribution_order () =
  let n = 12 in
  let reference = Degree.distribution (Graph.of_edges n (wheel_edges n)) in
  Alcotest.(check bool)
    "distribution keys strictly ascending" true
    (ascending (fun (a, _) (b, _) -> Int.compare a b) reference);
  let rng = Prng.create 7 in
  for _ = 1 to 8 do
    let g = Graph.of_edges n (shuffle rng (wheel_edges n)) in
    Alcotest.(check (list (pair int int)))
      "distribution ignores edge insertion order" reference
      (Degree.distribution g)
  done

let test_dk_order () =
  let n = 12 in
  let g0 = Graph.of_edges n (wheel_edges n) in
  let ref_one = Dk.one_k g0 in
  let ref_two = Dk.two_k g0 in
  let ref_three = Dk.three_k g0 in
  Alcotest.(check bool)
    "1K ascending" true
    (ascending (fun (a, _) (b, _) -> Int.compare a b) ref_one);
  Alcotest.(check bool)
    "2K has several entries" true
    (List.length ref_two >= 2);
  Alcotest.(check bool)
    "3K counts wedges and triangles" true
    (ref_three.Dk.wedges <> [] && ref_three.Dk.triangles <> []);
  let rng = Prng.create 11 in
  for _ = 1 to 8 do
    let g = Graph.of_edges n (shuffle rng (wheel_edges n)) in
    Alcotest.(check bool) "1K stable" true (Dk.equal_one_k ref_one (Dk.one_k g));
    Alcotest.(check bool) "2K stable" true (Dk.equal_two_k ref_two (Dk.two_k g));
    Alcotest.(check bool)
      "3K stable" true
      (Dk.equal_three_k ref_three (Dk.three_k g))
  done

(* --- Barabási–Albert baseline --------------------------------------------------- *)

let test_ba_reproducible () =
  (* The generator draws targets from a hash-table-backed chosen set; after
     the sorted-iteration fix, a seed fully determines the wiring. *)
  let gen seed = Ba.generate ~n:60 ~m:3 (Prng.create seed) in
  Alcotest.(check bool) "same seed, same graph" true (Graph.equal (gen 5) (gen 5));
  Alcotest.(check bool)
    "same fingerprint" true
    (Int64.equal (Graph.fingerprint (gen 5)) (Graph.fingerprint (gen 5)));
  Alcotest.(check bool)
    "different seeds differ" true
    (not (Graph.equal (gen 5) (gen 6)))

(* --- fair share ----------------------------------------------------------------- *)

let test_fair_share_flow_order () =
  (* Max-min rates are a property of the flow SET; presenting the flows in a
     different order must not move a single bit of any rate. *)
  let capacity (u, v) = float_of_int (3 + ((u + v) mod 5)) in
  let flows =
    List.init 9 (fun i ->
        let lo = i mod 4 and len = 1 + (i mod 3) in
        { Fair_share.id = i; links = List.init len (fun k -> (lo + k, lo + k + 1)) })
  in
  let by_id rates = List.sort (fun (a, _) (b, _) -> Int.compare a b) rates in
  let reference = by_id (Fair_share.allocate ~capacity flows) in
  let rng = Prng.create 13 in
  for _ = 1 to 10 do
    let rates = by_id (Fair_share.allocate ~capacity (shuffle rng flows)) in
    Alcotest.(check bool)
      "rates identical under flow-list shuffles" true
      (List.for_all2
         (fun (i1, r1) (i2, r2) -> i1 = i2 && Float.equal r1 r2)
         reference rates)
  done

(* --- flow simulation ------------------------------------------------------------ *)

let test_flow_sim_bitwise_deterministic () =
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 2.0 0.0;
       Point.make 3.0 0.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 5.0; 5.0; 5.0; 5.0 |] in
  let net = Network.build ctx (Builders.path 4) in
  let run () =
    Flow_sim.run
      { Flow_sim.default_config with Flow_sim.flow_limit = 250; warmup = 25 }
      net (Prng.create 21)
  in
  let a = run () and b = run () in
  (* Every field bit-identical: completion ties and reallocation order no
     longer depend on the active-table layout. *)
  Alcotest.(check int) "completed" a.Flow_sim.completed b.Flow_sim.completed;
  Alcotest.(check int) "peak" a.Flow_sim.peak_active b.Flow_sim.peak_active;
  Alcotest.(check bool) "mean fct" true (Float.equal a.Flow_sim.mean_fct b.Flow_sim.mean_fct);
  Alcotest.(check bool) "p95 fct" true (Float.equal a.Flow_sim.p95_fct b.Flow_sim.p95_fct);
  Alcotest.(check bool)
    "throughput" true
    (Float.equal a.Flow_sim.mean_throughput b.Flow_sim.mean_throughput);
  Alcotest.(check bool) "sim time" true (Float.equal a.Flow_sim.sim_time b.Flow_sim.sim_time)

(* --- incremental evaluation across domains ------------------------------------ *)

let test_incremental_across_domains () =
  (* Clone-and-retarget evaluation must be a pure function of the topology:
     the same variants costed through clones of one shared parent state give
     bitwise-identical floats at every domain count (each domain reuses its
     own DLS workspace), all equal to the stateless oracle. *)
  let module Cost = Cold.Cost in
  let module Incremental = Cold_net.Incremental in
  let module Par = Cold_par.Par in
  let ctx = Context.generate (Context.default_spec ~n:10) (Prng.create 31) in
  let params = Cost.params ~k2:2e-4 () in
  let base =
    Cold_graph.Mst.mst_graph ~n:10 ~weight:(fun u v -> Context.distance ctx u v)
  in
  let rng = Prng.create 32 in
  let variants =
    Array.init 24 (fun _ ->
        let g = Graph.copy base in
        for _ = 1 to 3 do
          let u = Prng.int rng 10 and v = Prng.int rng 10 in
          if u <> v then
            if Graph.mem_edge g u v then Graph.remove_edge g u v
            else Graph.add_edge g u v
        done;
        g)
  in
  let parent = Cost.state ctx base in
  ignore (Cost.evaluate_state params ctx parent);
  let costs_at domains =
    Par.with_pool ~domains (fun pool ->
        Par.map_array pool
          (fun g ->
            let st = Incremental.clone parent in
            ignore (Incremental.retarget st g);
            Cost.evaluate_state params ctx st)
          variants)
  in
  let oracle = Array.map (fun g -> Cost.evaluate params ctx g) variants in
  List.iter
    (fun domains ->
      let got = costs_at domains in
      Alcotest.(check bool)
        (Printf.sprintf "bitwise equal to oracle @ %d domains" domains)
        true
        (Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           got oracle))
    [ 1; 2; 4; 8 ]

(* --- locality mode across domains ---------------------------------------- *)

let test_locality_across_domains () =
  (* The spatial locality mode is a different RNG trajectory than the
     uniform operators, but it must be just as deterministic: candidates
     are bred serially, so the same seed gives bitwise-identical results at
     every domain count — and a bitwise-identical rerun at the same count. *)
  let module Cost = Cold.Cost in
  let module Ga = Cold.Ga in
  let ctx = Context.generate (Context.default_spec ~n:14) (Prng.create 61) in
  let params = Cost.params ~k2:2e-4 () in
  let settings =
    { Ga.default_settings with
      Ga.population_size = 12; generations = 4; num_saved = 3;
      num_crossover = 5; num_mutation = 4 }
  in
  let run domains =
    Ga.run ~domains ~locality:4 settings params ctx (Prng.create 62)
  in
  let reference = run 1 in
  List.iter
    (fun domains ->
      let r = run domains in
      Alcotest.(check bool)
        (Printf.sprintf "best cost bitwise @ %d domains" domains)
        true
        (Int64.equal
           (Int64.bits_of_float r.Ga.best_cost)
           (Int64.bits_of_float reference.Ga.best_cost));
      Alcotest.(check bool)
        (Printf.sprintf "best graph equal @ %d domains" domains)
        true
        (Graph.equal r.Ga.best reference.Ga.best);
      Alcotest.(check bool)
        (Printf.sprintf "history bitwise @ %d domains" domains)
        true
        (Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           r.Ga.history reference.Ga.history))
    [ 1; 2; 4; 8 ]

let () =
  Alcotest.run "cold_determinism"
    [
      ( "tbl",
        [
          Alcotest.test_case "sorted bindings" `Quick test_tbl_sorted_bindings;
          Alcotest.test_case "duplicate keys" `Quick test_tbl_duplicate_keys;
          Alcotest.test_case "fold and iter agree" `Quick test_tbl_fold_iter_agree;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "degree distribution" `Quick
            test_degree_distribution_order;
          Alcotest.test_case "dk distributions" `Quick test_dk_order;
        ] );
      ("baselines", [ Alcotest.test_case "ba reproducible" `Quick test_ba_reproducible ]);
      ( "sim",
        [
          Alcotest.test_case "fair share flow order" `Quick
            test_fair_share_flow_order;
          Alcotest.test_case "flow sim bitwise" `Quick
            test_flow_sim_bitwise_deterministic;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "clone/retarget across domains" `Quick
            test_incremental_across_domains;
        ] );
      ( "locality",
        [
          Alcotest.test_case "ga locality mode across domains" `Quick
            test_locality_across_domains;
        ] );
    ]
