(* Tests for the failure-injection engine (Cold_sim.Failure), the
   survivability pass (Cold_net.Survivability) and the 2-edge-connected
   repair (Cold.Repair.two_edge_connect) plus its GA knob.

   The determinism contract mirrors test_incremental: same seed means
   bit-identical traces, and replaying a trace must produce byte-for-byte
   equal report arrays at every domain count — floats are compared through
   Int64.bits_of_float, no tolerances. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Mst = Cold_graph.Mst
module Robustness = Cold_graph.Robustness
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Network = Cold_net.Network
module Survivability = Cold_net.Survivability
module Failure = Cold_sim.Failure

let bits = Int64.bits_of_float

let feq_bits a b = Int64.equal (bits a) (bits b)

let ctx_of seed n = Context.generate (Context.default_spec ~n) (Prng.create seed)

let edge_list g = List.rev (Graph.fold_edges g (fun acc u v -> (u, v) :: acc) [])

(* Elevated rates so short traces still exercise every failure mode. *)
let busy_rates =
  { Failure.link_rate = 0.05; node_rate = 0.03; regional_rate = 0.1;
    regional_radius = 15.0 }

(* --- trace generation ----------------------------------------------------- *)

let test_trace_deterministic () =
  List.iter
    (fun seed ->
      let ctx = ctx_of (seed + 100) 14 in
      let t1 = Failure.generate ~rates:busy_rates ~steps:25 ctx ~seed in
      let t2 = Failure.generate ~rates:busy_rates ~steps:25 ctx ~seed in
      (* Events carry only ints: structural equality IS bit-identity. *)
      Alcotest.(check bool) "same seed, same trace" true
        (t1.Failure.events = t2.Failure.events);
      let t3 = Failure.generate ~rates:busy_rates ~steps:25 ctx ~seed:(seed + 1) in
      Alcotest.(check bool) "different seed, different trace" false
        (t1.Failure.events = t3.Failure.events))
    [ 1; 2; 3 ]

let test_trace_prefix_stable () =
  (* Step i draws from an independent child stream, so a longer schedule is
     an extension of a shorter one, not a reshuffle. *)
  let ctx = ctx_of 9 10 in
  let short = Failure.generate ~rates:busy_rates ~steps:10 ctx ~seed:4 in
  let long = Failure.generate ~rates:busy_rates ~steps:30 ctx ~seed:4 in
  Alcotest.(check bool) "prefix unchanged" true
    (short.Failure.events = Array.sub long.Failure.events 0 10)

let test_trace_shape () =
  let ctx = ctx_of 5 9 in
  let t = Failure.generate ~rates:busy_rates ~steps:40 ctx ~seed:2 in
  Alcotest.(check int) "length" 40 (Failure.length t);
  Array.iteri
    (fun i e ->
      Alcotest.(check int) "step index" i e.Failure.step;
      let sorted_asc a = Array.for_all2 ( < ) (Array.sub a 0 (Array.length a - 1))
          (Array.sub a 1 (Array.length a - 1)) in
      if Array.length e.Failure.down_nodes > 1 then
        Alcotest.(check bool) "nodes ascending" true (sorted_asc e.Failure.down_nodes);
      Array.iter
        (fun (u, v) ->
          Alcotest.(check bool) "link u < v" true (0 <= u && u < v && v < 9))
        e.Failure.down_links;
      let l = Array.to_list e.Failure.down_links in
      Alcotest.(check bool) "links lexicographic" true
        (l = List.sort compare l))
    t.Failure.events

let test_regional_cut_extremes () =
  (* Regional rate 1 with a radius covering the whole region downs every
     node every step; radius 0 downs exactly the epicentre. *)
  let ctx = ctx_of 3 8 in
  let all =
    Failure.generate
      ~rates:{ Failure.link_rate = 0.0; node_rate = 0.0; regional_rate = 1.0;
               regional_radius = 1000.0 }
      ~steps:6 ctx ~seed:11
  in
  Array.iter
    (fun e ->
      Alcotest.(check (array int)) "everyone down"
        (Array.init 8 Fun.id) e.Failure.down_nodes)
    all.Failure.events;
  let point =
    Failure.generate
      ~rates:{ Failure.link_rate = 0.0; node_rate = 0.0; regional_rate = 1.0;
               regional_radius = 0.0 }
      ~steps:6 ctx ~seed:11
  in
  Array.iter
    (fun e ->
      Alcotest.(check int) "epicentre only" 1 (Array.length e.Failure.down_nodes))
    point.Failure.events;
  let quiet =
    Failure.generate
      ~rates:{ Failure.link_rate = 0.0; node_rate = 0.0; regional_rate = 0.0;
               regional_radius = 10.0 }
      ~steps:6 ctx ~seed:11
  in
  Array.iter
    (fun e ->
      Alcotest.(check int) "no nodes" 0 (Array.length e.Failure.down_nodes);
      Alcotest.(check int) "no links" 0 (Array.length e.Failure.down_links))
    quiet.Failure.events

let test_generate_validation () =
  let ctx = ctx_of 1 5 in
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Failure: link_rate must be a probability") (fun () ->
      ignore
        (Failure.generate
           ~rates:{ busy_rates with Failure.link_rate = 1.5 }
           ~steps:1 ctx ~seed:1));
  Alcotest.check_raises "bad radius"
    (Invalid_argument "Failure: regional_radius must be >= 0") (fun () ->
      ignore
        (Failure.generate
           ~rates:{ busy_rates with Failure.regional_radius = -1.0 }
           ~steps:1 ctx ~seed:1));
  Alcotest.check_raises "bad steps"
    (Invalid_argument "Failure.generate: steps must be >= 0") (fun () ->
      ignore (Failure.generate ~steps:(-1) ctx ~seed:1));
  Alcotest.(check int) "zero steps fine" 0
    (Failure.length (Failure.generate ~steps:0 ctx ~seed:1))

(* --- replay determinism across domains ------------------------------------ *)

let check_report_eq label (a : Survivability.report) (b : Survivability.report) =
  let int_field name x y =
    if x <> y then Alcotest.failf "%s: %s: got %d, want %d" label name x y
  in
  let float_field name x y =
    if not (feq_bits x y) then
      Alcotest.failf "%s: %s: got %h, want %h" label name x y
  in
  int_field "down_node_count" a.Survivability.down_node_count b.Survivability.down_node_count;
  int_field "down_link_count" a.Survivability.down_link_count b.Survivability.down_link_count;
  int_field "failed_pairs" a.Survivability.failed_pairs b.Survivability.failed_pairs;
  int_field "disconnected_pairs" a.Survivability.disconnected_pairs
    b.Survivability.disconnected_pairs;
  int_field "overloaded_links" a.Survivability.overloaded_links b.Survivability.overloaded_links;
  float_field "delivered_fraction" a.Survivability.delivered_fraction
    b.Survivability.delivered_fraction;
  float_field "lost_fraction" a.Survivability.lost_fraction b.Survivability.lost_fraction;
  float_field "stretch" a.Survivability.stretch b.Survivability.stretch;
  float_field "routed_volume_length" a.Survivability.routed_volume_length
    b.Survivability.routed_volume_length;
  float_field "max_utilization" a.Survivability.max_utilization b.Survivability.max_utilization

let test_evaluate_domain_invariance () =
  List.iter
    (fun seed ->
      let n = 10 in
      let ctx = ctx_of seed n in
      (* An MST plus a few shortcuts: bridges AND redundancy, so steps hit
         every report path (disconnection, detours, overload). *)
      let g = Mst.mst_graph ~n ~weight:(fun u v -> Context.distance ctx u v) in
      Graph.add_edge g 0 (n - 1);
      Graph.add_edge g 1 (n - 2);
      let net = Network.build ctx g in
      let trace = Failure.generate ~rates:busy_rates ~steps:12 ctx ~seed in
      let baseline = Failure.evaluate ~domains:1 net trace in
      List.iter
        (fun domains ->
          let got = Failure.evaluate ~domains net trace in
          Array.iteri
            (fun i r ->
              check_report_eq
                (Printf.sprintf "seed %d, %d domains, step %d" seed domains i)
                got.(i) r)
            baseline)
        [ 2; 4; 8 ];
      (* The summary is a pure fold over the reports plus a seeded
         bootstrap: bit-identical too. *)
      let s1 = Failure.summarize (Prng.create 9) baseline in
      let s8 =
        Failure.summarize (Prng.create 9) (Failure.evaluate ~domains:8 net trace)
      in
      Alcotest.(check bool) "summaries bit-identical" true (s1 = s8))
    [ 1; 2; 3 ]

let test_evaluate_size_mismatch () =
  let ctx = ctx_of 1 6 in
  let trace = Failure.generate ~steps:2 ctx ~seed:1 in
  let other = ctx_of 1 7 in
  let net = Network.build other (Builders.cycle 7) in
  Alcotest.check_raises "wrong n"
    (Invalid_argument "Failure.evaluate: trace size does not match network")
    (fun () -> ignore (Failure.evaluate net trace))

let test_summarize_empty () =
  Alcotest.check_raises "no reports"
    (Invalid_argument "Failure.summarize: no reports") (fun () ->
      ignore (Failure.summarize (Prng.create 1) [||]))

(* --- two_edge_connect ----------------------------------------------------- *)

let line_ctx n =
  let points = Array.init n (fun i -> Point.make (float_of_int i) 0.0) in
  Context.of_points_and_populations points (Array.make n 1.0)

let test_two_edge_connect_hand_computed () =
  (* Path 0-1-2-3 on a unit-spaced line. First bridge (0,1): cheapest absent
     crossing pair is (0,2) at distance 2 (vs (0,3) at 3). Remaining bridge
     (2,3): cheapest is (1,3) at 2 (vs (0,3) at 3). Two additions, then
     bridge-free. *)
  let ctx = line_ctx 4 in
  let g = Builders.path 4 in
  let added = Cold.Repair.two_edge_connect ctx g in
  Alcotest.(check int) "added" 2 added;
  Alcotest.(check (list (pair int int))) "edges"
    [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]
    (List.sort compare (edge_list g));
  Alcotest.(check bool) "2-edge-connected" true (Robustness.is_two_edge_connected g)

let random_graph ctx rng ~p =
  let n = Context.n ctx in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Cold_prng.Dist.bernoulli rng ~p then Graph.add_edge g u v
    done
  done;
  g

let test_two_edge_connect_random () =
  let rng = Prng.create 77 in
  for trial = 0 to 19 do
    let n = 3 + (trial mod 10) in
    let ctx = ctx_of (trial + 1) n in
    (* Sparse draws are often disconnected — exactly the hard inputs. *)
    let g = random_graph ctx rng ~p:0.15 in
    let twin = Graph.copy g in
    let added = Cold.Repair.two_edge_connect ctx g in
    Alcotest.(check bool) "2-edge-connected" true (Robustness.is_two_edge_connected g);
    Alcotest.(check bool) "connected" true (Traversal.is_connected g);
    Alcotest.(check bool) "added some" true (added >= 0);
    (* Idempotent: a second pass has nothing to do. *)
    Alcotest.(check int) "idempotent" 0 (Cold.Repair.two_edge_connect ctx g);
    (* Deterministic: an identical copy repairs to the identical graph. *)
    ignore (Cold.Repair.two_edge_connect ctx twin);
    Alcotest.(check (list (pair int int))) "deterministic"
      (List.sort compare (edge_list g))
      (List.sort compare (edge_list twin))
  done

let test_two_edge_connect_cycle_noop () =
  let ctx = ctx_of 4 6 in
  let g = Builders.cycle 6 in
  Alcotest.(check int) "nothing added" 0 (Cold.Repair.two_edge_connect ctx g);
  Alcotest.(check int) "edges kept" 6 (Graph.edge_count g)

let test_two_edge_connect_empty_input () =
  let ctx = ctx_of 8 5 in
  let g = Graph.create 5 in
  ignore (Cold.Repair.two_edge_connect ctx g);
  Alcotest.(check bool) "from edgeless" true (Robustness.is_two_edge_connected g)

let test_two_edge_connect_tiny () =
  (* n <= 2 cannot be 2-edge-connected as a simple graph: connected is the
     best the repair can (and does) deliver. *)
  let ctx1 = line_ctx 1 in
  let g1 = Graph.create 1 in
  Alcotest.(check int) "n=1 nothing" 0 (Cold.Repair.two_edge_connect ctx1 g1);
  let ctx2 = line_ctx 2 in
  let g2 = Graph.create 2 in
  Alcotest.(check int) "n=2 connects" 1 (Cold.Repair.two_edge_connect ctx2 g2);
  Alcotest.(check bool) "n=2 connected" true (Traversal.is_connected g2);
  Alcotest.(check int) "n=2 stable" 0 (Cold.Repair.two_edge_connect ctx2 g2)

let test_two_edge_connect_size_mismatch () =
  let ctx = line_ctx 3 in
  Alcotest.check_raises "size"
    (Invalid_argument "Repair.two_edge_connect: graph size does not match context")
    (fun () -> ignore (Cold.Repair.two_edge_connect ctx (Graph.create 4)))

(* --- the survivable GA knob ----------------------------------------------- *)

let small_settings =
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 12;
    generations = 5;
    num_saved = 3;
    num_crossover = 6;
    num_mutation = 3;
  }

let test_survivable_ga () =
  let ctx = ctx_of 21 8 in
  let params = Cold.Cost.params ~k2:3e-4 () in
  let run domains =
    Cold.Ga.run ~domains ~survivable:true small_settings params ctx
      (Prng.create 6)
  in
  let r = run 1 in
  Alcotest.(check bool) "best 2-edge-connected" true
    (Robustness.is_two_edge_connected r.Cold.Ga.best);
  Array.iter
    (fun (g, _) ->
      Alcotest.(check bool) "population member 2-edge-connected" true
        (Robustness.is_two_edge_connected g))
    r.Cold.Ga.final_population;
  (* The repair consumes no randomness, so domain-count determinism holds. *)
  let r2 = run 2 in
  Alcotest.(check bool) "best cost bit-identical across domains" true
    (feq_bits r.Cold.Ga.best_cost r2.Cold.Ga.best_cost);
  Alcotest.(check bool) "history bit-identical across domains" true
    (Array.for_all2 feq_bits r.Cold.Ga.history r2.Cold.Ga.history)

let test_survivable_synthesis () =
  let cfg =
    {
      (Cold.Synthesis.default_config ~params:(Cold.Cost.params ~k2:4e-4 ()) ()) with
      Cold.Synthesis.ga = small_settings;
      heuristic_permutations = 2;
      survivable = true;
    }
  in
  let net = Cold.Synthesis.synthesize cfg (Context.default_spec ~n:9) ~seed:13 in
  Alcotest.(check bool) "designed network 2-edge-connected" true
    (Robustness.is_two_edge_connected net.Network.graph)

let () =
  Alcotest.run "cold_failure"
    [
      ( "trace",
        [
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "prefix stable" `Quick test_trace_prefix_stable;
          Alcotest.test_case "shape" `Quick test_trace_shape;
          Alcotest.test_case "regional extremes" `Quick test_regional_cut_extremes;
          Alcotest.test_case "validation" `Quick test_generate_validation;
        ] );
      ( "replay",
        [
          Alcotest.test_case "domain invariance" `Quick test_evaluate_domain_invariance;
          Alcotest.test_case "size mismatch" `Quick test_evaluate_size_mismatch;
          Alcotest.test_case "empty summary" `Quick test_summarize_empty;
        ] );
      ( "two_edge_connect",
        [
          Alcotest.test_case "hand computed" `Quick test_two_edge_connect_hand_computed;
          Alcotest.test_case "random graphs" `Quick test_two_edge_connect_random;
          Alcotest.test_case "cycle no-op" `Quick test_two_edge_connect_cycle_noop;
          Alcotest.test_case "edgeless input" `Quick test_two_edge_connect_empty_input;
          Alcotest.test_case "tiny graphs" `Quick test_two_edge_connect_tiny;
          Alcotest.test_case "size mismatch" `Quick test_two_edge_connect_size_mismatch;
        ] );
      ( "survivable_ga",
        [
          Alcotest.test_case "ga knob" `Quick test_survivable_ga;
          Alcotest.test_case "synthesis knob" `Quick test_survivable_synthesis;
        ] );
    ]
