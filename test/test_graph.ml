(* Tests for Cold_graph: graph structure, heap, union-find, traversal,
   shortest paths, MST, builders. *)

module Graph = Cold_graph.Graph
module Heap = Cold_graph.Heap
module Union_find = Cold_graph.Union_find
module Traversal = Cold_graph.Traversal
module Shortest_path = Cold_graph.Shortest_path
module Mst = Cold_graph.Mst
module Builders = Cold_graph.Builders
module Prng = Cold_prng.Prng

(* --- Graph ---------------------------------------------------------------- *)

let test_empty () =
  let g = Graph.create 5 in
  Alcotest.(check int) "nodes" 5 (Graph.node_count g);
  Alcotest.(check int) "edges" 0 (Graph.edge_count g);
  for v = 0 to 4 do
    Alcotest.(check int) "degree" 0 (Graph.degree g v)
  done

let test_add_remove () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Alcotest.(check bool) "mem" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "mem symmetric" true (Graph.mem_edge g 1 0);
  Alcotest.(check int) "m" 1 (Graph.edge_count g);
  Graph.add_edge g 0 1;
  Alcotest.(check int) "idempotent add" 1 (Graph.edge_count g);
  Graph.add_edge g 1 0;
  Alcotest.(check int) "idempotent reversed" 1 (Graph.edge_count g);
  Graph.remove_edge g 1 0;
  Alcotest.(check bool) "removed" false (Graph.mem_edge g 0 1);
  Alcotest.(check int) "m back to 0" 0 (Graph.edge_count g);
  Graph.remove_edge g 0 1;
  Alcotest.(check int) "idempotent remove" 0 (Graph.edge_count g)

let test_self_loop () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1);
  Alcotest.(check bool) "mem self" false (Graph.mem_edge g 1 1)

let test_out_of_range () =
  let g = Graph.create 3 in
  Alcotest.check_raises "range" (Invalid_argument "Graph.add_edge: vertex out of range")
    (fun () -> Graph.add_edge g 0 3)

let test_degrees_and_leaves () =
  let g = Builders.star 5 in
  Alcotest.(check int) "hub degree" 4 (Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.degree g 3);
  Alcotest.(check bool) "hub not leaf" false (Graph.is_leaf g 0);
  Alcotest.(check bool) "leaf is leaf" true (Graph.is_leaf g 1);
  Alcotest.(check (list int)) "core nodes" [ 0 ] (Graph.core_nodes g);
  Alcotest.(check int) "core count" 1 (Graph.core_count g)

let test_isolated_is_leaf () =
  let g = Graph.create 2 in
  Alcotest.(check bool) "isolated counts as leaf" true (Graph.is_leaf g 0)

let test_neighbors () =
  let g = Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3) ] in
  Alcotest.(check (list int)) "ascending" [ 0; 3; 4 ] (Graph.neighbors g 2);
  Alcotest.(check (list int)) "single" [ 2 ] (Graph.neighbors g 0)

let test_edges_order () =
  let g = Graph.of_edges 4 [ (2, 3); (0, 1); (0, 2) ] in
  Alcotest.(check (list (pair int int))) "lexicographic"
    [ (0, 1); (0, 2); (2, 3) ] (Graph.edges g)

let test_copy_independence () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.copy g in
  Graph.add_edge h 1 2;
  Alcotest.(check int) "original untouched" 1 (Graph.edge_count g);
  Alcotest.(check int) "copy changed" 2 (Graph.edge_count h)

let test_equal () =
  let a = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let b = Graph.of_edges 3 [ (1, 2); (0, 1) ] in
  let c = Graph.of_edges 3 [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "equal" true (Graph.equal a b);
  Alcotest.(check bool) "not equal" false (Graph.equal a c);
  Alcotest.(check bool) "different sizes" false (Graph.equal a (Graph.create 3))

let test_complete () =
  let g = Graph.complete 6 in
  Alcotest.(check int) "edges" 15 (Graph.edge_count g);
  for v = 0 to 5 do
    Alcotest.(check int) "degree" 5 (Graph.degree g v)
  done

let test_remove_all_edges_of () =
  let g = Graph.complete 5 in
  Graph.remove_all_edges_of g 2;
  Alcotest.(check int) "degree zero" 0 (Graph.degree g 2);
  Alcotest.(check int) "edges" 6 (Graph.edge_count g);
  for v = 0 to 4 do
    if v <> 2 then Alcotest.(check int) "others lost one" 3 (Graph.degree g v)
  done

let test_degree_sequence () =
  let g = Builders.path 4 in
  Alcotest.(check (array int)) "path degrees" [| 1; 2; 2; 1 |] (Graph.degree_sequence g)

(* --- Heap ----------------------------------------------------------------- *)

let test_heap_sorted () =
  let h = Heap.create ~capacity:4 in
  List.iter (fun (p, v) -> Heap.push h ~priority:p v)
    [ (5.0, 1); (1.0, 2); (3.0, 3); (0.5, 4); (2.0, 5) ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (p, _) ->
      out := p :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-9))) "ascending priorities"
    [ 0.5; 1.0; 2.0; 3.0; 5.0 ] (List.rev !out)

let test_heap_tie_break () =
  let h = Heap.create ~capacity:2 in
  Heap.push h ~priority:1.0 7;
  Heap.push h ~priority:1.0 3;
  Heap.push h ~priority:1.0 5;
  (match Heap.pop_min h with
  | Some (_, v) -> Alcotest.(check int) "smallest vertex first" 3 v
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "size" 2 (Heap.size h)

let test_heap_empty () =
  let h = Heap.create ~capacity:1 in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop none" None (Heap.pop_min h)

(* --- Union-find ----------------------------------------------------------- *)

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "union works" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check int) "sets" 2 (Union_find.count uf);
  Alcotest.(check bool) "transitive" true (Union_find.same uf 1 2)

(* --- Traversal ------------------------------------------------------------ *)

let test_bfs_hops () =
  let g = Builders.path 5 in
  Alcotest.(check (array int)) "path hops" [| 0; 1; 2; 3; 4 |] (Traversal.bfs_hops g 0);
  Alcotest.(check (array int)) "from middle" [| 2; 1; 0; 1; 2 |] (Traversal.bfs_hops g 2)

let test_bfs_unreachable () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let hops = Traversal.bfs_hops g 0 in
  Alcotest.(check int) "unreachable is -1" (-1) hops.(2)

let test_connectivity () =
  Alcotest.(check bool) "path connected" true (Traversal.is_connected (Builders.path 5));
  Alcotest.(check bool) "empty edges disconnected" false
    (Traversal.is_connected (Graph.create 2));
  Alcotest.(check bool) "singleton connected" true (Traversal.is_connected (Graph.create 1));
  Alcotest.(check bool) "empty graph connected" true (Traversal.is_connected (Graph.create 0))

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (2, 3); (3, 4) ] in
  let (comp, k) = Traversal.connected_components g in
  Alcotest.(check int) "three components" 3 k;
  Alcotest.(check int) "0 and 1 together" comp.(0) comp.(1);
  Alcotest.(check int) "2,3,4 together" comp.(2) comp.(4);
  Alcotest.(check bool) "5 alone" true (comp.(5) <> comp.(0) && comp.(5) <> comp.(2));
  let members = Traversal.component_members (comp, k) in
  Alcotest.(check (list int)) "members sorted" [ 2; 3; 4 ] members.(comp.(2))

(* --- Shortest paths -------------------------------------------------------- *)

let weighted_fixture () =
  (* 0 --1.0-- 1 --1.0-- 2 ; 0 --2.5-- 2 ; 2 --1.0-- 3 *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  let length u v =
    match (min u v, max u v) with
    | (0, 1) | (1, 2) | (2, 3) -> 1.0
    | (0, 2) -> 2.5
    | _ -> Alcotest.fail "unexpected edge"
  in
  (g, length)

let test_dijkstra () =
  let (g, length) = weighted_fixture () in
  let t = Shortest_path.dijkstra g ~length ~source:0 in
  Alcotest.(check (float 1e-9)) "d(0)" 0.0 t.Shortest_path.dist.(0);
  Alcotest.(check (float 1e-9)) "d(1)" 1.0 t.Shortest_path.dist.(1);
  Alcotest.(check (float 1e-9)) "d(2) via 1" 2.0 t.Shortest_path.dist.(2);
  Alcotest.(check (float 1e-9)) "d(3)" 3.0 t.Shortest_path.dist.(3);
  Alcotest.(check (option (list int))) "path to 3" (Some [ 0; 1; 2; 3 ])
    (Shortest_path.path t 3)

let test_dijkstra_unreachable () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let t = Shortest_path.dijkstra g ~length:(fun _ _ -> 1.0) ~source:0 in
  Alcotest.(check bool) "unreachable infinite" true (t.Shortest_path.dist.(2) = infinity);
  Alcotest.(check (option (list int))) "no path" None (Shortest_path.path t 2);
  Alcotest.(check int) "order only reachable" 2 (Array.length t.Shortest_path.order)

let test_dijkstra_settling_order () =
  let (g, length) = weighted_fixture () in
  let t = Shortest_path.dijkstra g ~length ~source:0 in
  (* Settling order must be non-decreasing in distance. *)
  let prev = ref (-1.0) in
  Array.iter
    (fun v ->
      let d = t.Shortest_path.dist.(v) in
      Alcotest.(check bool) "non-decreasing" true (d >= !prev);
      prev := d)
    t.Shortest_path.order

let test_dijkstra_tie_break_deterministic () =
  (* Two equal-length routes 0-1-3 and 0-2-3: predecessor of 3 must be the
     smaller id, 1. *)
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let t = Shortest_path.dijkstra g ~length:(fun _ _ -> 1.0) ~source:0 in
  Alcotest.(check int) "pred tie-break" 1 t.Shortest_path.pred.(3)

let test_apsp () =
  let g = Builders.cycle 6 in
  let hops = Shortest_path.apsp_hops g in
  Alcotest.(check int) "opposite side" 3 hops.(0).(3);
  Alcotest.(check int) "adjacent" 1 hops.(4).(5);
  let lengths = Shortest_path.apsp_lengths g ~length:(fun _ _ -> 2.0) in
  Alcotest.(check (float 1e-9)) "weighted consistent" 6.0 lengths.(0).(3)

(* --- MST ------------------------------------------------------------------ *)

let test_prim_line () =
  (* Points on a line: MST must be the chain. *)
  let xs = [| 0.0; 1.0; 2.0; 3.5; 4.0 |] in
  let weight i j = Float.abs (xs.(i) -. xs.(j)) in
  let edges = Mst.prim_complete ~n:5 ~weight in
  Alcotest.(check int) "n-1 edges" 4 (List.length edges);
  let expected = [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  Alcotest.(check (list (pair int int))) "chain" expected (List.sort compare edges)

let test_prim_weight_optimal_small () =
  (* Compare Prim's total weight to exhaustive minimum over spanning trees on
     5 random points (by checking against all graphs' spanning subgraph... we
     instead verify against brute force over all 5^3 Prüfer trees). *)
  let rng = Prng.create 77 in
  let pts = Array.init 5 (fun _ -> (Prng.float rng, Prng.float rng)) in
  let weight i j =
    let (xi, yi) = pts.(i) and (xj, yj) = pts.(j) in
    sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))
  in
  let prim_total =
    List.fold_left (fun acc (u, v) -> acc +. weight u v) 0.0
      (Mst.prim_complete ~n:5 ~weight)
  in
  (* Enumerate all labelled trees on 5 vertices via Prüfer sequences. *)
  let best = ref infinity in
  for a = 0 to 4 do
    for b = 0 to 4 do
      for c = 0 to 4 do
        (* Decode the Prüfer sequence [a;b;c]. *)
        let seq = [| a; b; c |] in
        let deg = Array.make 5 1 in
        Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
        let total = ref 0.0 in
        let deg = Array.copy deg in
        Array.iter
          (fun v ->
            let leaf = ref (-1) in
            (try
               for u = 0 to 4 do
                 if deg.(u) = 1 then begin
                   leaf := u;
                   raise Exit
                 end
               done
             with Exit -> ());
            total := !total +. weight !leaf v;
            deg.(!leaf) <- 0;
            deg.(v) <- deg.(v) - 1)
          seq;
        let rest = ref [] in
        for u = 4 downto 0 do
          if deg.(u) = 1 then rest := u :: !rest
        done;
        (match !rest with
        | [ x; y ] -> total := !total +. weight x y
        | _ -> Alcotest.fail "bad prufer decode");
        if !total < !best then best := !total
      done
    done
  done;
  Alcotest.(check (float 1e-9)) "Prim is optimal" !best prim_total

let test_spanning_connector () =
  (* Two components on a line; connector must bridge at the closest pair. *)
  let xs = [| 0.0; 1.0; 5.0; 6.0 |] in
  let weight i j = Float.abs (xs.(i) -. xs.(j)) in
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let added = Mst.spanning_connector g ~weight in
  Alcotest.(check (list (pair int int))) "bridge closest pair" [ (1, 2) ] added;
  Mst.connect g ~weight;
  Alcotest.(check bool) "now connected" true (Traversal.is_connected g)

let test_spanning_connector_noop () =
  let g = Builders.path 4 in
  Alcotest.(check (list (pair int int))) "already connected" []
    (Mst.spanning_connector g ~weight:(fun _ _ -> 1.0))

let test_spanning_connector_singletons () =
  let xs = [| 0.0; 10.0; 11.0 |] in
  let weight i j = Float.abs (xs.(i) -. xs.(j)) in
  let g = Graph.create 3 in
  Mst.connect g ~weight;
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "tree" 2 (Graph.edge_count g);
  (* Must pick 0-1 and 1-2 (total 11), not 0-2 (total 11+... 0-1=10,1-2=1,0-2=11;
     MST = {1-2, 0-1} = 11 < {1-2, 0-2} = 12. *)
  Alcotest.(check bool) "cheapest bridges" true
    (Graph.mem_edge g 1 2 && Graph.mem_edge g 0 1)

(* --- Builders --------------------------------------------------------------- *)

let test_builders_shapes () =
  Alcotest.(check int) "path edges" 4 (Graph.edge_count (Builders.path 5));
  Alcotest.(check int) "cycle edges" 5 (Graph.edge_count (Builders.cycle 5));
  Alcotest.(check int) "star edges" 4 (Graph.edge_count (Builders.star 5));
  Alcotest.(check int) "double star edges" 9 (Graph.edge_count (Builders.double_star 10));
  Alcotest.(check int) "ladder nodes" 8 (Graph.node_count (Builders.ladder 4));
  Alcotest.(check int) "ladder edges" 10 (Graph.edge_count (Builders.ladder 4));
  Alcotest.(check int) "wheel edges" 12 (Graph.edge_count (Builders.wheel 7));
  Alcotest.(check int) "grid nodes" 12 (Graph.node_count (Builders.grid ~rows:3 ~cols:4));
  Alcotest.(check int) "grid edges" 17 (Graph.edge_count (Builders.grid ~rows:3 ~cols:4))

let test_balanced_tree () =
  let t = Builders.balanced_tree ~branching:2 ~depth:3 in
  Alcotest.(check int) "nodes 1+2+4+8" 15 (Graph.node_count t);
  Alcotest.(check int) "edges" 14 (Graph.edge_count t);
  Alcotest.(check bool) "connected" true (Traversal.is_connected t);
  Alcotest.(check int) "root degree" 2 (Graph.degree t 0)

let test_random_tree () =
  let rng = Prng.create 13 in
  for n = 1 to 20 do
    let t = Builders.random_tree n rng in
    Alcotest.(check int) "n nodes" n (Graph.node_count t);
    Alcotest.(check int) "n-1 edges" (max 0 (n - 1)) (Graph.edge_count t);
    Alcotest.(check bool) "connected" true (Traversal.is_connected t)
  done

let test_cycle_invalid () =
  Alcotest.check_raises "cycle too small"
    (Invalid_argument "Builders.cycle: need at least 3 vertices") (fun () ->
      ignore (Builders.cycle 2))

(* --- CSR adjacency views --------------------------------------------------- *)

let random_graph rng n ~p =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng < p then Graph.add_edge g u v
    done
  done;
  g

let neighbors_via iter v =
  let acc = ref [] in
  iter v (fun u -> acc := u :: !acc);
  List.rev !acc

(* A CSR snapshot must enumerate, per vertex, exactly the neighbour sequence
   of the dense row scan — same ids, same ascending order — across sparse,
   dense, empty and complete graphs. Everything downstream (Dijkstra
   relaxation order, BFS visit order, ECMP predecessor lists) rides on this. *)
let test_csr_matches_dense () =
  let rng = Prng.create 2024 in
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let g = random_graph rng n ~p in
          let c = Graph.Csr.of_graph g in
          Alcotest.(check int) "node count" n (Graph.Csr.node_count c);
          for v = 0 to n - 1 do
            Alcotest.(check int)
              (Printf.sprintf "degree v=%d" v)
              (Graph.degree g v) (Graph.Csr.degree c v);
            Alcotest.(check (list int))
              (Printf.sprintf "n=%d p=%.2f v=%d" n p v)
              (neighbors_via (Graph.iter_neighbors g) v)
              (neighbors_via (Graph.Csr.iter_neighbors c) v)
          done)
        [ 0.0; 0.1; 0.5; 1.0 ])
    [ 1; 2; 9; 40 ]

(* Reuse must rewrite in place without leaking the previous topology: a
   buffer sized for a bigger graph serves a smaller one, with iteration
   bounded by offsets, never by the targets array length. *)
let test_csr_reuse () =
  let rng = Prng.create 7 in
  let big = random_graph rng 30 ~p:0.6 in
  let buf = Graph.Csr.of_graph big in
  let small = random_graph rng 30 ~p:0.05 in
  let c = Graph.Csr.of_graph ~reuse:buf small in
  for v = 0 to 29 do
    Alcotest.(check (list int))
      (Printf.sprintf "reused v=%d" v)
      (neighbors_via (Graph.iter_neighbors small) v)
      (neighbors_via (Graph.Csr.iter_neighbors c) v)
  done

(* Dijkstra over a CSR view must be bit-identical to the dense path: same
   dist floats, same predecessors (tie-breaks included), same settling
   order. Randomized sweep over sparse and dense graphs. *)
let test_dijkstra_csr_bitwise () =
  let rng = Prng.create 99 in
  for trial = 1 to 20 do
    let n = 5 + Prng.int rng 30 in
    let p = if trial mod 2 = 0 then 0.15 else 0.7 in
    let g = random_graph rng n ~p in
    let length u v = 0.5 +. float_of_int ((u * 7) + (v * 3) mod 11) in
    let csr = Graph.Csr.of_graph g in
    let adj = Graph.adjacency_arrays g in
    for source = 0 to min (n - 1) 6 do
      let a = Shortest_path.dijkstra g ~length ~source in
      let b = Shortest_path.dijkstra ~csr g ~length ~source in
      let c = Shortest_path.dijkstra ~adj g ~length ~source in
      let check_eq label (x : Shortest_path.tree) (y : Shortest_path.tree) =
        Alcotest.(check bool)
          (Printf.sprintf "%s dist trial=%d s=%d" label trial source)
          true
          (Array.for_all2 (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
             x.Shortest_path.dist y.Shortest_path.dist);
        Alcotest.(check (list int))
          (Printf.sprintf "%s pred trial=%d s=%d" label trial source)
          (Array.to_list x.Shortest_path.pred)
          (Array.to_list y.Shortest_path.pred);
        Alcotest.(check (list int))
          (Printf.sprintf "%s order trial=%d s=%d" label trial source)
          (Array.to_list x.Shortest_path.order)
          (Array.to_list y.Shortest_path.order)
      in
      check_eq "csr=dense" a b;
      check_eq "adj=dense" a c
    done
  done

let test_bfs_csr_identical () =
  let rng = Prng.create 55 in
  for _ = 1 to 15 do
    let n = 3 + Prng.int rng 25 in
    let g = random_graph rng n ~p:0.2 in
    let csr = Graph.Csr.of_graph g in
    for s = 0 to n - 1 do
      Alcotest.(check (list int))
        (Printf.sprintf "bfs s=%d" s)
        (Array.to_list (Traversal.bfs_hops g s))
        (Array.to_list (Traversal.bfs_hops ~csr g s))
    done
  done

(* --- rank-indexed absent pairs --------------------------------------------- *)

(* nth_absent_pair k must walk the absent pairs in the same lexicographic
   (u < v) order as enumerating all pairs and filtering out edges. *)
let test_nth_absent_pair_enumeration () =
  let rng = Prng.create 31 in
  List.iter
    (fun (n, p) ->
      let g = random_graph rng n ~p in
      let absent = ref [] in
      for u = n - 1 downto 0 do
        for v = n - 1 downto u + 1 do
          if not (Graph.mem_edge g u v) then absent := (u, v) :: !absent
        done
      done;
      let absent = Array.of_list !absent in
      Alcotest.(check int)
        "absent count"
        (Array.length absent)
        ((n * (n - 1) / 2) - Graph.edge_count g);
      Array.iteri
        (fun k expect ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "n=%d k=%d" n k)
            expect (Graph.nth_absent_pair g k))
        absent)
    [ (2, 0.0); (6, 0.5); (10, 0.9); (12, 0.2); (9, 1.0) ]

let test_copy_into () =
  let rng = Prng.create 13 in
  let src = random_graph rng 12 ~p:0.4 in
  let dst = Graph.create 12 in
  Graph.add_edge dst 0 1;
  Graph.copy_into ~src ~dst;
  Alcotest.(check bool) "equal after copy_into" true (Graph.equal src dst);
  Graph.add_edge dst 2 3;
  Alcotest.(check bool) "independent" false (Graph.mem_edge src 2 3);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Graph.copy_into: size mismatch") (fun () ->
      Graph.copy_into ~src ~dst:(Graph.create 5))

(* --- properties ------------------------------------------------------------ *)

let random_graph_ops_gen =
  QCheck.Gen.(
    let op = pair (int_bound 7) (int_bound 7) in
    list_size (int_bound 60) op)

let qcheck_add_remove_consistency =
  QCheck.Test.make ~name:"edge count matches edge list after random ops" ~count:300
    (QCheck.make random_graph_ops_gen)
    (fun ops ->
      let g = Graph.create 8 in
      List.iteri
        (fun i (u, v) ->
          if u <> v then
            if i mod 3 = 2 then Graph.remove_edge g u v else Graph.add_edge g u v)
        ops;
      List.length (Graph.edges g) = Graph.edge_count g
      && List.for_all (fun (u, v) -> u < v && Graph.mem_edge g u v) (Graph.edges g))

let qcheck_degree_sum =
  QCheck.Test.make ~name:"sum of degrees = 2m" ~count:300
    (QCheck.make random_graph_ops_gen)
    (fun ops ->
      let g = Graph.create 8 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) ops;
      Array.fold_left ( + ) 0 (Graph.degree_sequence g) = 2 * Graph.edge_count g)

let qcheck_mst_connects =
  QCheck.Test.make ~name:"spanning connector always connects" ~count:200
    (QCheck.make random_graph_ops_gen)
    (fun ops ->
      let g = Graph.create 8 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) ops;
      let weight u v = float_of_int (1 + ((u + v) mod 5)) in
      Mst.connect g ~weight;
      Traversal.is_connected g)

let () =
  Alcotest.run "cold_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "self loop" `Quick test_self_loop;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "degrees/leaves" `Quick test_degrees_and_leaves;
          Alcotest.test_case "isolated leaf" `Quick test_isolated_is_leaf;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "edge order" `Quick test_edges_order;
          Alcotest.test_case "copy" `Quick test_copy_independence;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "remove_all_edges_of" `Quick test_remove_all_edges_of;
          Alcotest.test_case "degree sequence" `Quick test_degree_sequence;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorted" `Quick test_heap_sorted;
          Alcotest.test_case "tie break" `Quick test_heap_tie_break;
          Alcotest.test_case "empty" `Quick test_heap_empty;
        ] );
      ("union_find", [ Alcotest.test_case "basic" `Quick test_union_find ]);
      ( "traversal",
        [
          Alcotest.test_case "bfs hops" `Quick test_bfs_hops;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "components" `Quick test_components;
        ] );
      ( "shortest_path",
        [
          Alcotest.test_case "dijkstra" `Quick test_dijkstra;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "settling order" `Quick test_dijkstra_settling_order;
          Alcotest.test_case "tie break" `Quick test_dijkstra_tie_break_deterministic;
          Alcotest.test_case "apsp" `Quick test_apsp;
        ] );
      ( "mst",
        [
          Alcotest.test_case "line" `Quick test_prim_line;
          Alcotest.test_case "optimal (brute force)" `Quick test_prim_weight_optimal_small;
          Alcotest.test_case "spanning connector" `Quick test_spanning_connector;
          Alcotest.test_case "connector noop" `Quick test_spanning_connector_noop;
          Alcotest.test_case "connector singletons" `Quick
            test_spanning_connector_singletons;
        ] );
      ( "csr",
        [
          Alcotest.test_case "matches dense iteration" `Quick
            test_csr_matches_dense;
          Alcotest.test_case "reuse rewrites in place" `Quick test_csr_reuse;
          Alcotest.test_case "dijkstra bitwise" `Quick test_dijkstra_csr_bitwise;
          Alcotest.test_case "bfs identical" `Quick test_bfs_csr_identical;
          Alcotest.test_case "nth_absent_pair enumeration" `Quick
            test_nth_absent_pair_enumeration;
          Alcotest.test_case "copy_into" `Quick test_copy_into;
        ] );
      ( "builders",
        [
          Alcotest.test_case "shapes" `Quick test_builders_shapes;
          Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "cycle invalid" `Quick test_cycle_invalid;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_add_remove_consistency;
          QCheck_alcotest.to_alcotest qcheck_degree_sum;
          QCheck_alcotest.to_alcotest qcheck_mst_connects;
        ] );
    ]
