(* The incremental engine's contract is bit-identity: whatever sequence of
   edge flips, rollbacks, retargets and clones a state has been through, its
   loads and costs must be byte-for-byte what a fresh full evaluation of the
   same topology produces. These tests drive randomized op sequences (well
   over a thousand perturbations across seeds and routing modes) against a
   mirror graph evaluated from scratch, comparing load matrices, trees and
   cost totals bitwise — no tolerances anywhere. *)

module Graph = Cold_graph.Graph
module Heap = Cold_graph.Heap
module Mst = Cold_graph.Mst
module Shortest_path = Cold_graph.Shortest_path
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Routing = Cold_net.Routing
module Incremental = Cold_net.Incremental
module Cost = Cold.Cost
module Local_search = Cold.Local_search

let bits = Int64.bits_of_float

let feq_bits a b = Int64.equal (bits a) (bits b)

let ctx_of seed n = Context.generate (Context.default_spec ~n) (Prng.create seed)

(* Bitwise comparison of two loads: every matrix cell and every tree. *)
let check_loads_equal label n (got : Routing.loads) (want : Routing.loads) =
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let a = Routing.load got u v and b = Routing.load want u v in
      if not (feq_bits a b) then
        Alcotest.failf "%s: load (%d,%d): got %h, want %h" label u v a b
    done
  done;
  let ta = Routing.trees got and tb = Routing.trees want in
  Array.iteri
    (fun s (a : Shortest_path.tree) ->
      let b = tb.(s) in
      if not (Array.for_all2 feq_bits a.Shortest_path.dist b.Shortest_path.dist)
      then Alcotest.failf "%s: source %d dist differs" label s;
      if a.Shortest_path.pred <> b.Shortest_path.pred then
        Alcotest.failf "%s: source %d pred differs" label s;
      if a.Shortest_path.order <> b.Shortest_path.order then
        Alcotest.failf "%s: source %d order differs" label s)
    ta

(* --- randomized equivalence sweep --------------------------------------------- *)

let perturbations = ref 0

let random_pair rng n =
  let rec pick () =
    let u = Prng.int rng n and v = Prng.int rng n in
    if u = v then pick () else (min u v, max u v)
  in
  pick ()

(* Flip one random pair on the state and, when [mirror] is given, on the
   mirror graph too. *)
let flip ?mirror st rng n =
  let (u, v) = random_pair rng n in
  incr perturbations;
  if Graph.mem_edge (Incremental.graph st) u v then begin
    Incremental.remove_edge st u v;
    Option.iter (fun m -> Graph.remove_edge m u v) mirror
  end
  else begin
    Incremental.add_edge st u v;
    Option.iter (fun m -> Graph.add_edge m u v) mirror
  end

(* [?ctx] substitutes an adversarial context (e.g. colocated PoPs);
   [?length] substitutes an adversarial metric (e.g. unit lengths) — the
   cost cross-check is skipped then, since Cost always prices by the
   context's own distances. [?repair] picks the engine (default dynamic). *)
let sweep ?ctx ?length ?repair ~multipath ~seed ~iterations n =
  let ctx = match ctx with Some c -> c | None -> ctx_of seed n in
  let check_cost = Option.is_none length in
  let length =
    match length with
    | Some l -> l
    | None -> fun u v -> Context.distance ctx u v
  in
  let tm = ctx.Context.tm in
  let params = Cost.params ~k2:2e-4 ~k3:0.3 () in
  let rng = Prng.create ((seed * 7919) + 1) in
  let g0 = Mst.mst_graph ~n ~weight:length in
  let st = Incremental.create ~multipath ?repair g0 ~length ~tm in
  let mirror = ref (Graph.copy g0) in
  let check label =
    if not (Graph.equal (Incremental.graph st) !mirror) then
      Alcotest.failf "%s: state graph diverged from mirror" label;
    let fresh =
      match Routing.route ~multipath !mirror ~length ~tm with
      | exception Routing.Disconnected -> None
      | l -> Some l
    in
    let inc =
      match Incremental.loads st with
      | exception Routing.Disconnected -> None
      | l -> Some l
    in
    match (fresh, inc) with
    | None, None -> ()
    | Some want, Some got ->
      check_loads_equal label n got want;
      if (not multipath) && check_cost then begin
        let a = Cost.evaluate params ctx !mirror in
        let b = Cost.evaluate_state params ctx st in
        if not (feq_bits a b) then
          Alcotest.failf "%s: cost: evaluate %h vs evaluate_state %h" label a b
      end
    | Some _, None -> Alcotest.failf "%s: incremental says disconnected" label
    | None, Some _ -> Alcotest.failf "%s: fresh says disconnected" label
  in
  check "initial";
  for step = 1 to iterations do
    let label what = Printf.sprintf "seed %d mp %b step %d %s" seed multipath step what in
    (match Prng.int rng 12 with
    | 0 | 1 | 2 | 3 | 4 | 5 ->
      flip ~mirror:!mirror st rng n;
      Incremental.commit st
    | 6 | 7 ->
      flip ~mirror:!mirror st rng n;
      flip ~mirror:!mirror st rng n;
      Incremental.commit st
    | 8 | 9 ->
      (* Uncommitted proposal: evaluate it, reject it, and demand the state
         lands exactly back on the committed topology. *)
      let saved = Graph.copy !mirror in
      for _ = 1 to 1 + Prng.int rng 3 do
        flip ~mirror:!mirror st rng n
      done;
      check (label "proposed");
      Incremental.rollback st;
      mirror := saved
    | 10 ->
      (* Retarget: jump to a several-flips-away topology in one call. *)
      let target = Graph.copy !mirror in
      let trng = rng in
      for _ = 1 to 5 do
        let (u, v) = random_pair trng n in
        incr perturbations;
        if Graph.mem_edge target u v then Graph.remove_edge target u v
        else Graph.add_edge target u v
      done;
      let flips = Incremental.retarget st target in
      Alcotest.(check bool) (label "retarget flip count") true (flips <= 5);
      Incremental.commit st;
      mirror := target
    | _ ->
      (* Clone divergence: mutate the clone, leave the parent untouched. *)
      let c = Incremental.clone st in
      flip c rng n;
      flip c rng n;
      Incremental.commit c;
      let cg = Graph.copy (Incremental.graph c) in
      let fresh =
        match Routing.route ~multipath cg ~length ~tm with
        | exception Routing.Disconnected -> None
        | l -> Some l
      in
      let inc =
        match Incremental.loads c with
        | exception Routing.Disconnected -> None
        | l -> Some l
      in
      (match (fresh, inc) with
      | None, None -> ()
      | Some want, Some got -> check_loads_equal (label "clone") n got want
      | _ -> Alcotest.failf "%s: clone feasibility disagrees" (label "clone")));
    check (label "committed")
  done;
  Incremental.repaired_trees st

let test_sweep_single_path () =
  let repaired =
    List.fold_left
      (fun acc seed -> acc + sweep ~multipath:false ~seed ~iterations:170 13)
      0 [ 1; 2; 3 ]
  in
  (* The default engine must actually repair, not silently bail everywhere. *)
  Alcotest.(check bool)
    (Printf.sprintf "dynamic engine repaired trees (got %d)" repaired)
    true (repaired > 0)

let test_sweep_multipath () =
  let repaired = sweep ~multipath:true ~seed:4 ~iterations:170 13 in
  Alcotest.(check bool) "dynamic engine repaired trees" true (repaired > 0)

let test_sweep_mark_dirty_engine () =
  (* The repair:false engine must stay available and exact — and never
     report repairs. *)
  let r1 = sweep ~repair:false ~multipath:false ~seed:5 ~iterations:90 13 in
  let r2 = sweep ~repair:false ~multipath:true ~seed:6 ~iterations:70 13 in
  Alcotest.(check int) "mark-dirty engine never repairs" 0 (r1 + r2)

(* --- adversarial tie-heavy topologies ----------------------------------------- *)

(* Colocated PoPs: coordinate duplicates make zero-length links, the exact
   case the repair certificate rejects — every repair of such a tree must
   bail to a full Dijkstra, and results must stay bit-identical through the
   bail path. Distances between distinct sites still tie heavily (integer
   grid). *)
let colocated_ctx n =
  let pts =
    Array.init n (fun i ->
        let k = i / 2 in
        Cold_geom.Point.make (float_of_int (k mod 3)) (float_of_int (k / 3)))
  in
  let pops = Array.init n (fun i -> 1.0 +. float_of_int (i mod 4)) in
  Context.of_points_and_populations pts pops

let test_sweep_colocated_pops () =
  let n = 12 in
  ignore (sweep ~ctx:(colocated_ctx n) ~multipath:false ~seed:31 ~iterations:130 n);
  ignore (sweep ~ctx:(colocated_ctx n) ~multipath:true ~seed:32 ~iterations:90 n)

let test_sweep_unit_lengths () =
  (* Every link weight 1: path lengths collapse onto small integers, so
     equal-length alternative routes are everywhere and every repair leans
     on the canonical (priority, vertex-id) tie-break. *)
  let r = sweep ~length:(fun _ _ -> 1.0) ~multipath:false ~seed:33 ~iterations:150 13 in
  Alcotest.(check bool) "unit-length sweep exercises repair" true (r > 0);
  ignore (sweep ~length:(fun _ _ -> 1.0) ~multipath:true ~seed:34 ~iterations:90 13)

let test_sweep_quantized_lengths () =
  (* Two-valued metric: multigraph-like parallel shortest candidates between
     whole regions, plus exact float ties in every relaxation. *)
  let length u v = if (u + v) mod 2 = 0 then 2.0 else 1.0 in
  ignore (sweep ~length ~multipath:false ~seed:35 ~iterations:150 13);
  ignore (sweep ~length ~multipath:true ~seed:36 ~iterations:90 13)

let test_perturbation_budget () =
  (* The two sweeps above must together exceed the required op count. *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 1000 perturbations (got %d)" !perturbations)
    true
    (!perturbations >= 1000)

(* --- workspace equivalence ---------------------------------------------------- *)

let test_workspace_bit_identical () =
  let n = 12 in
  let ctx = ctx_of 9 n in
  let length u v = Context.distance ctx u v in
  let tm = ctx.Context.tm in
  let rng = Prng.create 10 in
  let g = Mst.mst_graph ~n ~weight:length in
  for _ = 1 to 8 do
    let (u, v) = random_pair rng n in
    if not (Graph.mem_edge g u v) then Graph.add_edge g u v
  done;
  let sp = Shortest_path.workspace ~n in
  let adj = Graph.adjacency_arrays g in
  for s = 0 to n - 1 do
    let plain = Shortest_path.dijkstra g ~length ~source:s in
    let ws = Shortest_path.dijkstra ~workspace:sp g ~length ~source:s in
    let ws_adj = Shortest_path.dijkstra ~adj ~workspace:sp g ~length ~source:s in
    List.iter
      (fun (label, (t : Shortest_path.tree)) ->
        if not (Array.for_all2 feq_bits plain.Shortest_path.dist t.Shortest_path.dist)
        then Alcotest.failf "dijkstra %s: dist differs at source %d" label s;
        if plain.Shortest_path.pred <> t.Shortest_path.pred then
          Alcotest.failf "dijkstra %s: pred differs at source %d" label s;
        if plain.Shortest_path.order <> t.Shortest_path.order then
          Alcotest.failf "dijkstra %s: order differs at source %d" label s)
      [ ("workspace", ws); ("workspace+adj", ws_adj) ]
  done;
  List.iter
    (fun multipath ->
      let rws = Routing.workspace ~n in
      let plain = Routing.route ~multipath g ~length ~tm in
      let with_ws = Routing.route ~multipath ~workspace:rws g ~length ~tm in
      check_loads_equal
        (Printf.sprintf "route multipath=%b" multipath)
        n with_ws plain)
    [ false; true ];
  let params = Cost.params ~k2:2e-4 () in
  let rws = Routing.workspace ~n in
  Alcotest.(check bool) "Cost.evaluate with workspace" true
    (feq_bits (Cost.evaluate params ctx g) (Cost.evaluate ~workspace:rws params ctx g))

(* --- fused breakdown ---------------------------------------------------------- *)

let test_breakdown_fused_pass () =
  let n = 11 in
  let ctx = ctx_of 14 n in
  let length u v = Context.distance ctx u v in
  let params = Cost.params ~k2:3e-4 ~k3:0.7 () in
  let g = Mst.mst_graph ~n ~weight:length in
  Graph.add_edge g 0 (n - 1);
  Graph.add_edge g 1 (n - 2);
  let b = Cost.evaluate_breakdown params ctx g in
  (* Reference: the two separate passes the fused sweep replaced. *)
  let loads = Routing.route g ~length ~tm:ctx.Context.tm in
  let len = Graph.fold_edges g (fun acc u v -> acc +. length u v) 0.0 in
  let vl = Routing.total_volume_length loads ~length in
  Alcotest.(check bool) "length term" true (feq_bits b.Cost.length (1.0 *. len));
  Alcotest.(check bool) "bandwidth term" true
    (feq_bits b.Cost.bandwidth (3e-4 *. vl));
  Alcotest.(check bool) "total = evaluate" true
    (feq_bits b.Cost.total (Cost.evaluate params ctx g));
  Alcotest.(check bool) "total = sum of terms" true
    (feq_bits b.Cost.total
       (b.Cost.existence +. b.Cost.length +. b.Cost.bandwidth +. b.Cost.hub))

(* --- indexed edge lookup and diffs -------------------------------------------- *)

let test_nth_edge_matches_enumeration () =
  let rng = Prng.create 77 in
  for trial = 1 to 20 do
    let n = 3 + Prng.int rng 12 in
    let g = Graph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Prng.int rng 3 = 0 then Graph.add_edge g u v
      done
    done;
    let edges = Array.of_list (Graph.edges g) in
    Alcotest.(check int)
      (Printf.sprintf "trial %d: edge count" trial)
      (Array.length edges) (Graph.edge_count g);
    Array.iteri
      (fun k (u, v) ->
        Alcotest.(check (pair int int))
          (Printf.sprintf "trial %d: edge %d" trial k)
          (u, v) (Graph.nth_edge g k))
      edges;
    Alcotest.check_raises "rank out of range"
      (Invalid_argument "Graph.nth_edge: rank out of range") (fun () ->
        ignore (Graph.nth_edge g (Graph.edge_count g)))
  done

let test_edge_diff_roundtrip () =
  let rng = Prng.create 78 in
  for trial = 1 to 20 do
    let n = 3 + Prng.int rng 10 in
    let mk () =
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Prng.int rng 2 = 0 then Graph.add_edge g u v
        done
      done;
      g
    in
    let g = mk () and h = mk () in
    let (removed, added) = Graph.edge_diff g h in
    let patched = Graph.copy g in
    List.iter (fun (u, v) -> Graph.remove_edge patched u v) removed;
    List.iter (fun (u, v) -> Graph.add_edge patched u v) added;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: diff patches g into h" trial)
      true
      (Graph.equal patched h);
    Alcotest.(check (pair (list (pair int int)) (list (pair int int))))
      (Printf.sprintf "trial %d: diff of equal graphs is empty" trial)
      ([], []) (Graph.edge_diff h h)
  done

(* --- batched multi-flip journals ---------------------------------------------- *)

let test_batched_journal () =
  (* k flips accumulate in one journal, then a single commit or rollback.
     Loads are demanded only at the batch boundary, so repairs from
     different flips of the batch compose on one tree before any oracle
     check — and one rollback must unwind the whole batch. *)
  let n = 14 in
  let ctx = ctx_of 61 n in
  let length u v = Context.distance ctx u v in
  let tm = ctx.Context.tm in
  let rng = Prng.create 62 in
  let g0 = Mst.mst_graph ~n ~weight:length in
  let st = Incremental.create g0 ~length ~tm in
  let mirror = ref (Graph.copy g0) in
  ignore (Incremental.loads st);
  Incremental.commit st;
  let check label =
    let fresh =
      match Routing.route !mirror ~length ~tm with
      | exception Routing.Disconnected -> None
      | l -> Some l
    in
    let inc =
      match Incremental.loads st with
      | exception Routing.Disconnected -> None
      | l -> Some l
    in
    match (fresh, inc) with
    | None, None -> ()
    | Some want, Some got -> check_loads_equal label n got want
    | _ -> Alcotest.failf "%s: feasibility disagrees" label
  in
  List.iter
    (fun k ->
      List.iter
        (fun commit ->
          let saved = Graph.copy !mirror in
          for _ = 1 to k do
            flip ~mirror:!mirror st rng n
          done;
          check (Printf.sprintf "k=%d proposed" k);
          if commit then Incremental.commit st
          else begin
            Incremental.rollback st;
            mirror := saved
          end;
          check (Printf.sprintf "k=%d %s" k (if commit then "committed" else "rolled back")))
        [ true; false ])
    [ 1; 2; 4; 8 ];
  Alcotest.(check bool) "batched journals exercised repair" true
    (Incremental.repaired_trees st > 0)

(* --- dual-engine lockstep ------------------------------------------------------ *)

let test_dual_engine_lockstep () =
  (* Drive the dynamic and the mark-dirty engines through the identical op
     sequence and demand bitwise-equal loads at every checkpoint: any drift
     between repair and recompute shows up as a direct diff, independent of
     the oracle. *)
  let n = 14 in
  let ctx = ctx_of 71 n in
  let length u v = Context.distance ctx u v in
  let tm = ctx.Context.tm in
  let rng = Prng.create 72 in
  let g0 = Mst.mst_graph ~n ~weight:length in
  let dyn = Incremental.create ~repair:true g0 ~length ~tm in
  let mrk = Incremental.create ~repair:false g0 ~length ~tm in
  for step = 1 to 150 do
    let (u, v) = random_pair rng n in
    incr perturbations;
    if Graph.mem_edge (Incremental.graph dyn) u v then begin
      Incremental.remove_edge dyn u v;
      Incremental.remove_edge mrk u v
    end
    else begin
      Incremental.add_edge dyn u v;
      Incremental.add_edge mrk u v
    end;
    let commit = Prng.int rng 4 < 3 in
    let compare_now () =
      let of_state st =
        match Incremental.loads st with
        | exception Routing.Disconnected -> None
        | l -> Some l
      in
      match (of_state mrk, of_state dyn) with
      | None, None -> ()
      | Some want, Some got ->
        check_loads_equal (Printf.sprintf "step %d" step) n got want
      | _ -> Alcotest.failf "step %d: engines disagree on feasibility" step
    in
    compare_now ();
    if commit then begin
      Incremental.commit dyn;
      Incremental.commit mrk
    end
    else begin
      Incremental.rollback dyn;
      Incremental.rollback mrk;
      compare_now ()
    end
  done;
  Alcotest.(check bool) "dynamic engine repaired" true
    (Incremental.repaired_trees dyn > 0);
  Alcotest.(check int) "mark-dirty engine never repairs" 0
    (Incremental.repaired_trees mrk)

(* --- indexed heap ------------------------------------------------------------- *)

let test_indexed_heap_matches_lazy () =
  (* The decrease-key heap must pop the exact accepted sequence of the lazy
     heap: each vertex once, at its minimal pushed priority, in the strict
     (priority, vertex-id) order both heaps document. Quarter-integer
     priorities force plenty of exact float ties. *)
  let rng = Prng.create 81 in
  for trial = 1 to 60 do
    let n = 1 + Prng.int rng 40 in
    let lazyh = Heap.create ~capacity:4 in
    let idx = Heap.Indexed.create ~n in
    let best = Array.make n infinity in
    for _ = 1 to 1 + Prng.int rng 120 do
      let v = Prng.int rng n in
      let p = float_of_int (Prng.int rng 16) /. 4.0 in
      Heap.push lazyh ~priority:p v;
      Heap.Indexed.decrease idx ~priority:p v;
      if p < best.(v) then best.(v) <- p
    done;
    let popped = Array.make n false in
    let rec accepted () =
      match Heap.pop_min lazyh with
      | None -> None
      | Some (p, v) ->
        if popped.(v) then accepted ()
        else begin
          popped.(v) <- true;
          Some (p, v)
        end
    in
    let rec drain () =
      match Heap.Indexed.pop_min idx with
      | None ->
        (match accepted () with
        | None -> ()
        | Some (p, v) ->
          Alcotest.failf "trial %d: lazy heap has extra accepted pop (%g, %d)"
            trial p v)
      | Some (p, v) ->
        if not (feq_bits p best.(v)) then
          Alcotest.failf "trial %d: vertex %d popped at %g, minimal was %g"
            trial v p best.(v);
        (match accepted () with
        | Some (p', v') when v = v' && feq_bits p p' -> ()
        | Some (p', v') ->
          Alcotest.failf "trial %d: indexed (%g, %d) vs lazy (%g, %d)" trial p
            v p' v'
        | None -> Alcotest.failf "trial %d: lazy heap exhausted early" trial);
        drain ()
    in
    drain ()
  done

(* --- optimizer equivalence ---------------------------------------------------- *)

let test_local_search_incremental_bitwise () =
  let ctx = ctx_of 21 12 in
  let params = Cost.params ~k2:2e-4 () in
  let settings = { Local_search.default_settings with Local_search.iterations = 600 } in
  let full = Local_search.run ~incremental:false settings params ctx (Prng.create 22) in
  List.iter
    (fun (label, repair) ->
      let b =
        Local_search.run ~incremental:true ~repair settings params ctx
          (Prng.create 22)
      in
      Alcotest.(check bool) (label ^ ": best graph identical") true
        (Graph.equal full.Local_search.best b.Local_search.best);
      Alcotest.(check bool) (label ^ ": best cost bit-identical") true
        (feq_bits full.Local_search.best_cost b.Local_search.best_cost);
      Alcotest.(check int) (label ^ ": same accepted count")
        full.Local_search.accepted b.Local_search.accepted;
      Alcotest.(check int) (label ^ ": same evaluation count")
        full.Local_search.evaluations b.Local_search.evaluations)
    [ ("dynamic", true); ("mark-dirty", false) ]

let () =
  Alcotest.run "cold_incremental"
    [
      ( "sweep",
        [
          Alcotest.test_case "single-path equivalence" `Quick test_sweep_single_path;
          Alcotest.test_case "multipath equivalence" `Quick test_sweep_multipath;
          Alcotest.test_case "mark-dirty engine equivalence" `Quick
            test_sweep_mark_dirty_engine;
          Alcotest.test_case "colocated PoPs (zero-length ties)" `Quick
            test_sweep_colocated_pops;
          Alcotest.test_case "unit lengths (tie-heavy)" `Quick
            test_sweep_unit_lengths;
          Alcotest.test_case "quantized lengths (parallel candidates)" `Quick
            test_sweep_quantized_lengths;
          Alcotest.test_case "batched multi-flip journals" `Quick
            test_batched_journal;
          Alcotest.test_case "dual-engine lockstep" `Quick
            test_dual_engine_lockstep;
          Alcotest.test_case "perturbation budget" `Quick test_perturbation_budget;
        ] );
      ( "heap",
        [
          Alcotest.test_case "indexed matches lazy accepted pops" `Quick
            test_indexed_heap_matches_lazy;
        ] );
      ( "workspace",
        [ Alcotest.test_case "bit-identical outputs" `Quick test_workspace_bit_identical ] );
      ( "cost",
        [ Alcotest.test_case "fused breakdown" `Quick test_breakdown_fused_pass ] );
      ( "graph",
        [
          Alcotest.test_case "nth_edge matches enumeration" `Quick
            test_nth_edge_matches_enumeration;
          Alcotest.test_case "edge_diff roundtrip" `Quick test_edge_diff_roundtrip;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "local search incremental bitwise" `Quick
            test_local_search_incremental_bitwise;
        ] );
    ]
