(* The incremental engine's contract is bit-identity: whatever sequence of
   edge flips, rollbacks, retargets and clones a state has been through, its
   loads and costs must be byte-for-byte what a fresh full evaluation of the
   same topology produces. These tests drive randomized op sequences (well
   over a thousand perturbations across seeds and routing modes) against a
   mirror graph evaluated from scratch, comparing load matrices, trees and
   cost totals bitwise — no tolerances anywhere. *)

module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Shortest_path = Cold_graph.Shortest_path
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Routing = Cold_net.Routing
module Incremental = Cold_net.Incremental
module Cost = Cold.Cost
module Local_search = Cold.Local_search

let bits = Int64.bits_of_float

let feq_bits a b = Int64.equal (bits a) (bits b)

let ctx_of seed n = Context.generate (Context.default_spec ~n) (Prng.create seed)

(* Bitwise comparison of two loads: every matrix cell and every tree. *)
let check_loads_equal label n (got : Routing.loads) (want : Routing.loads) =
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let a = Routing.load got u v and b = Routing.load want u v in
      if not (feq_bits a b) then
        Alcotest.failf "%s: load (%d,%d): got %h, want %h" label u v a b
    done
  done;
  let ta = Routing.trees got and tb = Routing.trees want in
  Array.iteri
    (fun s (a : Shortest_path.tree) ->
      let b = tb.(s) in
      if not (Array.for_all2 feq_bits a.Shortest_path.dist b.Shortest_path.dist)
      then Alcotest.failf "%s: source %d dist differs" label s;
      if a.Shortest_path.pred <> b.Shortest_path.pred then
        Alcotest.failf "%s: source %d pred differs" label s;
      if a.Shortest_path.order <> b.Shortest_path.order then
        Alcotest.failf "%s: source %d order differs" label s)
    ta

(* --- randomized equivalence sweep --------------------------------------------- *)

let perturbations = ref 0

let random_pair rng n =
  let rec pick () =
    let u = Prng.int rng n and v = Prng.int rng n in
    if u = v then pick () else (min u v, max u v)
  in
  pick ()

(* Flip one random pair on the state and, when [mirror] is given, on the
   mirror graph too. *)
let flip ?mirror st rng n =
  let (u, v) = random_pair rng n in
  incr perturbations;
  if Graph.mem_edge (Incremental.graph st) u v then begin
    Incremental.remove_edge st u v;
    Option.iter (fun m -> Graph.remove_edge m u v) mirror
  end
  else begin
    Incremental.add_edge st u v;
    Option.iter (fun m -> Graph.add_edge m u v) mirror
  end

let sweep ~multipath ~seed ~iterations n =
  let ctx = ctx_of seed n in
  let length u v = Context.distance ctx u v in
  let tm = ctx.Context.tm in
  let params = Cost.params ~k2:2e-4 ~k3:0.3 () in
  let rng = Prng.create ((seed * 7919) + 1) in
  let g0 = Mst.mst_graph ~n ~weight:length in
  let st = Incremental.create ~multipath g0 ~length ~tm in
  let mirror = ref (Graph.copy g0) in
  let check label =
    if not (Graph.equal (Incremental.graph st) !mirror) then
      Alcotest.failf "%s: state graph diverged from mirror" label;
    let fresh =
      match Routing.route ~multipath !mirror ~length ~tm with
      | exception Routing.Disconnected -> None
      | l -> Some l
    in
    let inc =
      match Incremental.loads st with
      | exception Routing.Disconnected -> None
      | l -> Some l
    in
    match (fresh, inc) with
    | None, None -> ()
    | Some want, Some got ->
      check_loads_equal label n got want;
      if not multipath then begin
        let a = Cost.evaluate params ctx !mirror in
        let b = Cost.evaluate_state params ctx st in
        if not (feq_bits a b) then
          Alcotest.failf "%s: cost: evaluate %h vs evaluate_state %h" label a b
      end
    | Some _, None -> Alcotest.failf "%s: incremental says disconnected" label
    | None, Some _ -> Alcotest.failf "%s: fresh says disconnected" label
  in
  check "initial";
  for step = 1 to iterations do
    let label what = Printf.sprintf "seed %d mp %b step %d %s" seed multipath step what in
    (match Prng.int rng 12 with
    | 0 | 1 | 2 | 3 | 4 | 5 ->
      flip ~mirror:!mirror st rng n;
      Incremental.commit st
    | 6 | 7 ->
      flip ~mirror:!mirror st rng n;
      flip ~mirror:!mirror st rng n;
      Incremental.commit st
    | 8 | 9 ->
      (* Uncommitted proposal: evaluate it, reject it, and demand the state
         lands exactly back on the committed topology. *)
      let saved = Graph.copy !mirror in
      for _ = 1 to 1 + Prng.int rng 3 do
        flip ~mirror:!mirror st rng n
      done;
      check (label "proposed");
      Incremental.rollback st;
      mirror := saved
    | 10 ->
      (* Retarget: jump to a several-flips-away topology in one call. *)
      let target = Graph.copy !mirror in
      let trng = rng in
      for _ = 1 to 5 do
        let (u, v) = random_pair trng n in
        incr perturbations;
        if Graph.mem_edge target u v then Graph.remove_edge target u v
        else Graph.add_edge target u v
      done;
      let flips = Incremental.retarget st target in
      Alcotest.(check bool) (label "retarget flip count") true (flips <= 5);
      Incremental.commit st;
      mirror := target
    | _ ->
      (* Clone divergence: mutate the clone, leave the parent untouched. *)
      let c = Incremental.clone st in
      flip c rng n;
      flip c rng n;
      Incremental.commit c;
      let cg = Graph.copy (Incremental.graph c) in
      let fresh =
        match Routing.route ~multipath cg ~length ~tm with
        | exception Routing.Disconnected -> None
        | l -> Some l
      in
      let inc =
        match Incremental.loads c with
        | exception Routing.Disconnected -> None
        | l -> Some l
      in
      (match (fresh, inc) with
      | None, None -> ()
      | Some want, Some got -> check_loads_equal (label "clone") n got want
      | _ -> Alcotest.failf "%s: clone feasibility disagrees" (label "clone")));
    check (label "committed")
  done

let test_sweep_single_path () =
  List.iter (fun seed -> sweep ~multipath:false ~seed ~iterations:170 13) [ 1; 2; 3 ]

let test_sweep_multipath () =
  sweep ~multipath:true ~seed:4 ~iterations:170 13

let test_perturbation_budget () =
  (* The two sweeps above must together exceed the required op count. *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 1000 perturbations (got %d)" !perturbations)
    true
    (!perturbations >= 1000)

(* --- workspace equivalence ---------------------------------------------------- *)

let test_workspace_bit_identical () =
  let n = 12 in
  let ctx = ctx_of 9 n in
  let length u v = Context.distance ctx u v in
  let tm = ctx.Context.tm in
  let rng = Prng.create 10 in
  let g = Mst.mst_graph ~n ~weight:length in
  for _ = 1 to 8 do
    let (u, v) = random_pair rng n in
    if not (Graph.mem_edge g u v) then Graph.add_edge g u v
  done;
  let sp = Shortest_path.workspace ~n in
  let adj = Graph.adjacency_arrays g in
  for s = 0 to n - 1 do
    let plain = Shortest_path.dijkstra g ~length ~source:s in
    let ws = Shortest_path.dijkstra ~workspace:sp g ~length ~source:s in
    let ws_adj = Shortest_path.dijkstra ~adj ~workspace:sp g ~length ~source:s in
    List.iter
      (fun (label, (t : Shortest_path.tree)) ->
        if not (Array.for_all2 feq_bits plain.Shortest_path.dist t.Shortest_path.dist)
        then Alcotest.failf "dijkstra %s: dist differs at source %d" label s;
        if plain.Shortest_path.pred <> t.Shortest_path.pred then
          Alcotest.failf "dijkstra %s: pred differs at source %d" label s;
        if plain.Shortest_path.order <> t.Shortest_path.order then
          Alcotest.failf "dijkstra %s: order differs at source %d" label s)
      [ ("workspace", ws); ("workspace+adj", ws_adj) ]
  done;
  List.iter
    (fun multipath ->
      let rws = Routing.workspace ~n in
      let plain = Routing.route ~multipath g ~length ~tm in
      let with_ws = Routing.route ~multipath ~workspace:rws g ~length ~tm in
      check_loads_equal
        (Printf.sprintf "route multipath=%b" multipath)
        n with_ws plain)
    [ false; true ];
  let params = Cost.params ~k2:2e-4 () in
  let rws = Routing.workspace ~n in
  Alcotest.(check bool) "Cost.evaluate with workspace" true
    (feq_bits (Cost.evaluate params ctx g) (Cost.evaluate ~workspace:rws params ctx g))

(* --- fused breakdown ---------------------------------------------------------- *)

let test_breakdown_fused_pass () =
  let n = 11 in
  let ctx = ctx_of 14 n in
  let length u v = Context.distance ctx u v in
  let params = Cost.params ~k2:3e-4 ~k3:0.7 () in
  let g = Mst.mst_graph ~n ~weight:length in
  Graph.add_edge g 0 (n - 1);
  Graph.add_edge g 1 (n - 2);
  let b = Cost.evaluate_breakdown params ctx g in
  (* Reference: the two separate passes the fused sweep replaced. *)
  let loads = Routing.route g ~length ~tm:ctx.Context.tm in
  let len = Graph.fold_edges g (fun acc u v -> acc +. length u v) 0.0 in
  let vl = Routing.total_volume_length loads ~length in
  Alcotest.(check bool) "length term" true (feq_bits b.Cost.length (1.0 *. len));
  Alcotest.(check bool) "bandwidth term" true
    (feq_bits b.Cost.bandwidth (3e-4 *. vl));
  Alcotest.(check bool) "total = evaluate" true
    (feq_bits b.Cost.total (Cost.evaluate params ctx g));
  Alcotest.(check bool) "total = sum of terms" true
    (feq_bits b.Cost.total
       (b.Cost.existence +. b.Cost.length +. b.Cost.bandwidth +. b.Cost.hub))

(* --- indexed edge lookup and diffs -------------------------------------------- *)

let test_nth_edge_matches_enumeration () =
  let rng = Prng.create 77 in
  for trial = 1 to 20 do
    let n = 3 + Prng.int rng 12 in
    let g = Graph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Prng.int rng 3 = 0 then Graph.add_edge g u v
      done
    done;
    let edges = Array.of_list (Graph.edges g) in
    Alcotest.(check int)
      (Printf.sprintf "trial %d: edge count" trial)
      (Array.length edges) (Graph.edge_count g);
    Array.iteri
      (fun k (u, v) ->
        Alcotest.(check (pair int int))
          (Printf.sprintf "trial %d: edge %d" trial k)
          (u, v) (Graph.nth_edge g k))
      edges;
    Alcotest.check_raises "rank out of range"
      (Invalid_argument "Graph.nth_edge: rank out of range") (fun () ->
        ignore (Graph.nth_edge g (Graph.edge_count g)))
  done

let test_edge_diff_roundtrip () =
  let rng = Prng.create 78 in
  for trial = 1 to 20 do
    let n = 3 + Prng.int rng 10 in
    let mk () =
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Prng.int rng 2 = 0 then Graph.add_edge g u v
        done
      done;
      g
    in
    let g = mk () and h = mk () in
    let (removed, added) = Graph.edge_diff g h in
    let patched = Graph.copy g in
    List.iter (fun (u, v) -> Graph.remove_edge patched u v) removed;
    List.iter (fun (u, v) -> Graph.add_edge patched u v) added;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: diff patches g into h" trial)
      true
      (Graph.equal patched h);
    Alcotest.(check (pair (list (pair int int)) (list (pair int int))))
      (Printf.sprintf "trial %d: diff of equal graphs is empty" trial)
      ([], []) (Graph.edge_diff h h)
  done

(* --- optimizer equivalence ---------------------------------------------------- *)

let test_local_search_incremental_bitwise () =
  let ctx = ctx_of 21 12 in
  let params = Cost.params ~k2:2e-4 () in
  let settings = { Local_search.default_settings with Local_search.iterations = 600 } in
  let run incremental =
    Local_search.run ~incremental settings params ctx (Prng.create 22)
  in
  let a = run false and b = run true in
  Alcotest.(check bool) "best graph identical" true
    (Graph.equal a.Local_search.best b.Local_search.best);
  Alcotest.(check bool) "best cost bit-identical" true
    (feq_bits a.Local_search.best_cost b.Local_search.best_cost);
  Alcotest.(check int) "same accepted count" a.Local_search.accepted
    b.Local_search.accepted;
  Alcotest.(check int) "same evaluation count" a.Local_search.evaluations
    b.Local_search.evaluations

let () =
  Alcotest.run "cold_incremental"
    [
      ( "sweep",
        [
          Alcotest.test_case "single-path equivalence" `Quick test_sweep_single_path;
          Alcotest.test_case "multipath equivalence" `Quick test_sweep_multipath;
          Alcotest.test_case "perturbation budget" `Quick test_perturbation_budget;
        ] );
      ( "workspace",
        [ Alcotest.test_case "bit-identical outputs" `Quick test_workspace_bit_identical ] );
      ( "cost",
        [ Alcotest.test_case "fused breakdown" `Quick test_breakdown_fused_pass ] );
      ( "graph",
        [
          Alcotest.test_case "nth_edge matches enumeration" `Quick
            test_nth_edge_matches_enumeration;
          Alcotest.test_case "edge_diff roundtrip" `Quick test_edge_diff_roundtrip;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "local search incremental bitwise" `Quick
            test_local_search_incremental_bitwise;
        ] );
    ]
