(* Tests for the cold_lint static-analysis pass: lexer classification, each
   rule's positive / negative / suppression behaviour, scoping, and the
   reporters. *)

module Lexer = Cold_lint.Lexer
module Finding = Cold_lint.Finding
module Rules = Cold_lint.Rules
module Engine = Cold_lint.Engine
module Report = Cold_lint.Report
module Baseline = Cold_lint.Baseline

let lint ?only ?mli_exists ?(path = "lib/fake/fixture.ml") src =
  Engine.check_source ?only ?mli_exists ~path src

let rules_fired findings =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Finding.rule) findings)

let check_fires rule src =
  Alcotest.(check (list string))
    (rule ^ " fires") [ rule ]
    (rules_fired (lint ~only:[ rule ] src))

let check_clean rule src =
  Alcotest.(check (list string))
    (rule ^ " stays quiet") []
    (rules_fired (lint ~only:[ rule ] src))

(* --- lexer ------------------------------------------------------------------- *)

let kinds src =
  List.map (fun (t : Lexer.token) -> t.Lexer.kind) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check bool)
    "idents and ops" true
    (kinds "let x = compare a b"
    = Lexer.
        [ Ident "let"; Ident "x"; Op "="; Ident "compare"; Ident "a"; Ident "b" ]);
  Alcotest.(check bool)
    "float vs int" true
    (kinds "1 2.0 3e-4 0x1f"
    = Lexer.[ Int_lit "1"; Float_lit "2.0"; Float_lit "3e-4"; Int_lit "0x1f" ])

let test_lexer_comments_strings () =
  (* Tokens inside comments and strings must never look like code. *)
  Alcotest.(check bool)
    "nested comment" true
    (match kinds "(* a (* failwith *) b *) x" with
    | [ Lexer.Comment _; Lexer.Ident "x" ] -> true
    | _ -> false);
  Alcotest.(check bool)
    "string hides code" true
    (kinds {|"failwith (* not a comment"|} = [ Lexer.String_lit ]);
  Alcotest.(check bool)
    "quoted string literal" true
    (match kinds "{xx|failwith \"raw\"|xx} y" with
    | [ Lexer.String_lit; Lexer.Ident "y" ] -> true
    | _ -> false)

let test_lexer_quoted_strings () =
  (* Delimiters are [a-z_]* per the grammar: underscores yes, digits no —
     a digit must fall through to bigarray-style brace punctuation. *)
  Alcotest.(check bool)
    "underscore delimiter" true
    (match kinds "{foo_bar|failwith \"raw\"|foo_bar} y" with
    | [ Lexer.String_lit; Lexer.Ident "y" ] -> true
    | _ -> false);
  Alcotest.(check bool)
    "digit is not a delimiter" true
    (not (List.mem Lexer.String_lit (kinds "m.{1|ignore|1} x")));
  Alcotest.(check bool)
    "empty delimiter" true
    (match kinds "{|a \"b\" c|} y" with
    | [ Lexer.String_lit; Lexer.Ident "y" ] -> true
    | _ -> false);
  (* Newlines inside the literal must advance the line counter. *)
  let tokens = Lexer.tokenize "{q|one\ntwo\nthree|q}\nafter" in
  (match tokens with
  | [ s; a ] ->
    Alcotest.(check bool) "is string" true (s.Lexer.kind = Lexer.String_lit);
    Alcotest.(check int) "string starts line 1" 1 s.Lexer.line;
    Alcotest.(check int) "string ends line 3" 3 s.Lexer.end_line;
    Alcotest.(check int) "next token on line 4" 4 a.Lexer.line
  | _ -> Alcotest.fail "expected exactly two tokens");
  (* An unterminated literal must not loop or crash. *)
  Alcotest.(check bool)
    "unterminated literal consumed" true
    (List.mem Lexer.String_lit (kinds "{q|never closed"))

let test_lexer_chars_and_lines () =
  Alcotest.(check bool)
    "char literal vs type var" true
    (match kinds "'a' 'b" with
    | [ Lexer.Char_lit ] -> true
    | _ -> false);
  let tokens = Lexer.tokenize "x\n(* one\n   two *)\ny" in
  let line_of i = (List.nth tokens i).Lexer.line in
  let end_of i = (List.nth tokens i).Lexer.end_line in
  Alcotest.(check int) "x on line 1" 1 (line_of 0);
  Alcotest.(check int) "comment starts line 2" 2 (line_of 1);
  Alcotest.(check int) "comment ends line 3" 3 (end_of 1);
  Alcotest.(check int) "y on line 4" 4 (line_of 2)

(* --- rules: positive / negative / suppression -------------------------------- *)

let test_no_stdlib_random () =
  check_fires "no-stdlib-random" "let x = Random.int 5";
  check_fires "no-stdlib-random" "let () = Stdlib.Random.self_init ()";
  check_clean "no-stdlib-random" "let x = Prng.int rng 5";
  check_clean "no-stdlib-random" "(* Random.int would be wrong here *) let x = 1";
  check_clean "no-stdlib-random"
    "let x = Random.int 5 (* lint: allow no-stdlib-random *)"

let test_no_wall_clock () =
  check_fires "no-wall-clock" "let t = Sys.time ()";
  check_fires "no-wall-clock" "let t = Unix.gettimeofday ()";
  check_clean "no-wall-clock" "let t = Sys.timeout";
  (* bench/ is exempt by scope. *)
  Alcotest.(check (list string))
    "bench exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "no-wall-clock" ] ~path:"bench/micro.ml"
          "let t = Unix.gettimeofday ()"));
  (* lib/serve is exempt too: the daemon times service for its stats. *)
  Alcotest.(check (list string))
    "lib/serve exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "no-wall-clock" ]
          ~path:"lib/serve/server.ml" "let t = Unix.gettimeofday ()"))

let test_unix_dependency_fence () =
  let rule = "unix-dependency-fence" in
  let at path src =
    rules_fired (Engine.check_source ~only:[ rule ] ~path src)
  in
  check_fires rule "let fd = Unix.socket d t 0";
  check_fires rule "let t = Unix.gettimeofday ()";
  check_clean rule "(* Unix.socket would be wrong here *) let x = 1";
  check_clean rule "let fd = Unix.socket d t 0 (* lint: allow unix-dependency-fence *)";
  (* dune stanzas: a unix library dependency fires; mentions inside dotted
     paths or comments do not. *)
  Alcotest.(check (list string))
    "dune dep fires" [ rule ]
    (at "lib/fake/dune" "(library\n (name fake)\n (libraries cold unix))");
  Alcotest.(check (list string))
    "dune without unix quiet" []
    (at "lib/fake/dune" "(library\n (name fake)\n (libraries cold))");
  (* lib/serve may link unix; bin/ and bench/ are out of scope entirely. *)
  Alcotest.(check (list string))
    "lib/serve exempt" []
    (at "lib/serve/dune" "(library\n (name cold_serve)\n (libraries unix))");
  Alcotest.(check (list string))
    "lib/serve code exempt" []
    (at "lib/serve/server.ml" "let fd = Unix.socket d t 0");
  Alcotest.(check (list string))
    "bin out of scope" []
    (at "bin/cold_serve_main.ml" "let () = Unix.sleep 1");
  Alcotest.(check (list string))
    "bench out of scope" []
    (at "bench/dune" "(executable\n (name b)\n (libraries unix))")

let test_no_polymorphic_compare () =
  check_fires "no-polymorphic-compare" "let xs = List.sort compare xs";
  check_fires "no-polymorphic-compare" "let c = Stdlib.compare a b";
  check_clean "no-polymorphic-compare" "let xs = List.sort Int.compare xs";
  check_clean "no-polymorphic-compare" "let compare a b = Int.compare a b";
  check_clean "no-polymorphic-compare" "let f = sort ~compare:Int.compare";
  check_clean "no-polymorphic-compare"
    "let xs = List.sort compare xs (* lint: allow no-polymorphic-compare *)";
  (* Suppression comment on the line above also covers the violation. *)
  check_clean "no-polymorphic-compare"
    "(* lint: allow no-polymorphic-compare *)\nlet xs = List.sort compare xs"

let test_no_failwith_in_lib () =
  check_fires "no-failwith-in-lib" "let f () = failwith \"nope\"";
  check_clean "no-failwith-in-lib" "let f () = invalid_arg \"nope\"";
  check_clean "no-failwith-in-lib" "let s = \"failwith\"";
  (* Out of scope: tests may failwith. *)
  Alcotest.(check (list string))
    "test scope exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "no-failwith-in-lib" ]
          ~path:"test/test_x.ml" "let f () = failwith \"nope\""))

let test_mli_required () =
  Alcotest.(check (list string))
    "missing mli flagged" [ "mli-required" ]
    (rules_fired (lint ~only:[ "mli-required" ] ~mli_exists:false "let x = 1"));
  Alcotest.(check (list string))
    "present mli ok" []
    (rules_fired (lint ~only:[ "mli-required" ] ~mli_exists:true "let x = 1"));
  Alcotest.(check (list string))
    "unknown stays quiet" []
    (rules_fired (lint ~only:[ "mli-required" ] "let x = 1"));
  check_clean "mli-required" "(* lint: allow mli-required *)\nlet x = 1"

let test_no_naked_float_eq () =
  check_fires "no-naked-float-eq" "let f x = if x = 0.0 then 1 else 2";
  check_fires "no-naked-float-eq" "let f x = x <> 1.0";
  check_fires "no-naked-float-eq" "let f x = when_ (0.5 = x)";
  check_fires "no-naked-float-eq" "let f x = x == 0.0";
  (* Bindings and record fields are not comparisons. *)
  check_clean "no-naked-float-eq" "let x = 0.0";
  check_clean "no-naked-float-eq" "let r = { load = 1.0; size = 100.0 }";
  check_clean "no-naked-float-eq" "let f ?(level = 0.95) () = level";
  check_clean "no-naked-float-eq" "let ok = Float.equal x 0.0";
  check_clean "no-naked-float-eq" "let ok = x <= 0.0 || x >= 1.0";
  check_clean "no-naked-float-eq"
    "let f x = if x = 0.0 then 1 else 2 (* lint: allow no-naked-float-eq *)"

let test_no_polymorphic_minmax () =
  check_fires "no-polymorphic-minmax" "let m = max 0.0 x";
  check_fires "no-polymorphic-minmax" "let m = Array.fold_left max 0.0 xs";
  check_fires "no-polymorphic-minmax" "let m = min x infinity";
  check_fires "no-polymorphic-minmax" "let c = compare x 1.5";
  (* Qualified, int-looking, defining and labelled uses stay quiet. *)
  check_clean "no-polymorphic-minmax" "let m = Float.max 0.0 x";
  check_clean "no-polymorphic-minmax" "let m = max 0 x";
  check_clean "no-polymorphic-minmax" "let m = max a b";
  check_clean "no-polymorphic-minmax" "let max a b = if a > b then a else b";
  check_clean "no-polymorphic-minmax" "let f = sort ~compare:Float.compare";
  (* A float past the argument window or a break token is out of reach. *)
  check_clean "no-polymorphic-minmax" "let m = max a b in x +. 0.5";
  check_clean "no-polymorphic-minmax" "let m = if max a b > 0 then 1.0 else 2.0";
  check_clean "no-polymorphic-minmax"
    "let m = max 0.0 x (* lint: allow no-polymorphic-minmax *)"

let test_inferred_float_idents () =
  (* The intra-file pass tracks let-bound floats, so unannotated uses of
     inferred-float identifiers fire even without a literal in the window. *)
  check_fires "no-polymorphic-minmax" "let x = 1.5\nlet m = max x y";
  check_fires "no-polymorphic-minmax" "let r = sqrt v in min r cap";
  check_fires "no-polymorphic-minmax" "let d = Float.of_int n in compare d y";
  check_fires "no-naked-float-eq" "let x = float_of_int n\nlet b = x <> y";
  check_fires "no-naked-float-eq" "let f (x : float) y = if x = y then 1 else 2";
  check_fires "no-naked-float-eq" "let cost : float = score g in cost == best";
  (* Rebinding to a non-float evicts the identifier. *)
  check_clean "no-polymorphic-minmax" "let x = 1.5\nlet x = 1\nlet m = max x y";
  check_clean "no-naked-float-eq" "let x = 1.5\nlet x = 1\nlet b = x <> y";
  (* Alias bindings are bindings, not comparisons. *)
  check_clean "no-naked-float-eq" "let x = 1.5\nlet y = x";
  check_clean "no-polymorphic-minmax" "let m = max a b in let x = 1.5 in x"

let test_hashtbl_iteration_order () =
  check_fires "hashtbl-iteration-order"
    "let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []";
  check_fires "hashtbl-iteration-order"
    "let () = Hashtbl.iter (fun k _ -> out := k :: !out) tbl";
  check_fires "hashtbl-iteration-order"
    "let () = Hashtbl.iter (fun k v -> Printf.printf \"%d %d\" k v) tbl";
  check_fires "hashtbl-iteration-order" "let s = Hashtbl.to_seq tbl";
  (* A canonicalizing sort upstream of the fold makes the order harmless. *)
  check_clean "hashtbl-iteration-order"
    "let xs =\n\
    \  List.sort\n\
    \    (fun (k1, _) (k2, _) -> Int.compare k1 k2)\n\
    \    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])";
  (* Per-binding in-place mutation is order-insensitive. *)
  check_clean "hashtbl-iteration-order"
    "let () = Hashtbl.iter (fun _ f -> f.remaining <- f.remaining -. dt) tbl";
  (* The blessed wrappers are the sanctioned spelling. *)
  check_clean "hashtbl-iteration-order"
    "let xs = Tbl.sorted_bindings ~cmp:Int.compare tbl";
  check_clean "hashtbl-iteration-order"
    "let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* lint: \
     allow hashtbl-iteration-order *)";
  (* lib/util/tbl.ml implements the wrappers, so raw iteration is exempt. *)
  Alcotest.(check (list string))
    "tbl.ml exempt" []
    (rules_fired
       (Engine.check_source
          ~only:[ "hashtbl-iteration-order" ]
          ~path:"lib/util/tbl.ml"
          "let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []"))

let test_todo_tracker () =
  check_fires "todo-tracker" "(* TODO fix the frobnicator *)";
  check_fires "todo-tracker" "(* FIXME *)";
  check_clean "todo-tracker" "(* TODO(alice): fix the frobnicator *)";
  check_clean "todo-tracker" "(* FIXME(#42) handle overflow *)";
  check_clean "todo-tracker" "(* the todo list datatype *)";
  check_clean "todo-tracker" "(* TODOS are plural words, not markers *)";
  check_clean "todo-tracker" "(* TODO later *) (* lint: allow todo-tracker *)"

let test_magic_cost_constant () =
  check_fires "magic-cost-constant" "let p = Cost.params ~k2:2e-4 ()";
  check_fires "magic-cost-constant" "let p = { p with k3 = 300.0 }";
  check_clean "magic-cost-constant" "let p = Cost.params ~k2 ()";
  check_clean "magic-cost-constant" "let p = Cost.params ~k1:unit_k1 ()";
  (* presets.ml is the sanctioned home. *)
  Alcotest.(check (list string))
    "presets exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "magic-cost-constant" ]
          ~path:"lib/core/presets.ml" "let p = Cost.params ~k2:2e-4 ()"));
  (* k-params in tests/bench are exploratory, not canonical. *)
  Alcotest.(check (list string))
    "test scope exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "magic-cost-constant" ]
          ~path:"test/test_cost.ml" "let p = Cost.params ~k2:2e-4 ()"))

(* --- engine ------------------------------------------------------------------- *)

let test_multi_rule_suppression () =
  let src =
    "let x = Random.int 5 |> compare 3 (* lint: allow no-stdlib-random \
     no-polymorphic-compare *)"
  in
  Alcotest.(check (list string)) "both suppressed" [] (rules_fired (lint src))

let test_unknown_rule_rejected () =
  match Engine.check_paths ~only:[ "no-such-rule" ] [ "lib" ] with
  | Error msg ->
    Alcotest.(check bool) "mentions rule" true
      (String.length msg > 0 && msg = "unknown rule: no-such-rule")
  | Ok _ -> Alcotest.fail "expected Error for unknown rule"

let test_findings_sorted () =
  let src = "let f () = failwith (string_of_float (Sys.time ()))" in
  let fs = lint ~only:[ "no-failwith-in-lib"; "no-wall-clock" ] src in
  Alcotest.(check (list string))
    "canonical order" [ "no-failwith-in-lib"; "no-wall-clock" ]
    (List.map (fun f -> f.Finding.rule) fs)

let test_repo_is_clean () =
  (* The acceptance bar: the shipped tree has no violations beyond the
     committed baseline. Runs from test/ in the dune sandbox, so point at
     the project root via cwd. *)
  match
    Engine.check_paths [ "../lib"; "../bin"; "../test"; "../bench" ]
  with
  | Ok fs -> (
    let baseline =
      match Baseline.load ~path:"../lint-baseline.json" with
      | Ok b -> b
      | Error _ -> []
    in
    let d = Baseline.diff ~baseline fs in
    match d.Baseline.fresh with
    | [] -> ()
    | f :: _ ->
      Alcotest.failf "repo has %d new lint violation(s), first: %s"
        (List.length d.Baseline.fresh)
        (Finding.to_string f))
  | Error _ ->
    (* Source tree not materialized in this sandbox; the @lint alias covers
       the real run. *)
    ()

(* --- baseline ------------------------------------------------------------------ *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let fnd rule file line msg = Finding.make ~rule ~file ~line msg

let test_baseline_load () =
  let fs =
    [
      fnd "no-wall-clock" "lib/a.ml" 3 "say \"hi\"\tand\\more";
      fnd "todo-tracker" "lib/b.ml" 7 "bare TODO";
    ]
  in
  (* The baseline format IS the --json report, so a write/load round-trip
     must be the identity. *)
  let path = Filename.temp_file "cold_lint_baseline" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path (Report.json fs);
  (match Baseline.load ~path with
  | Ok got -> Alcotest.(check bool) "round-trips" true (got = fs)
  | Error e -> Alcotest.fail e);
  write_file path "{ \"not\": \"an array\" }";
  (match Baseline.load ~path with
  | Error msg ->
    Alcotest.(check bool) "error names the file" true
      (String.length msg > 0
      && String.sub msg 0 (String.length path) = path)
  | Ok _ -> Alcotest.fail "non-array baseline accepted");
  write_file path "[ { \"rule\": \"r\" } ]";
  (match Baseline.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete finding accepted");
  write_file path "[] trailing";
  (match Baseline.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing content accepted");
  match Baseline.load ~path:"no_such_baseline.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline accepted"

let test_baseline_diff () =
  let a = fnd "no-wall-clock" "lib/a.ml" 3 "msg-a" in
  let a_shifted = fnd "no-wall-clock" "lib/a.ml" 9 "msg-a" in
  let b = fnd "todo-tracker" "lib/b.ml" 7 "msg-b" in
  (* Line shifts are absorbed; genuinely new findings are fresh. *)
  let d = Baseline.diff ~baseline:[ a ] [ a_shifted; b ] in
  Alcotest.(check bool) "line shift absorbed" true (d.Baseline.fresh = [ b ]);
  Alcotest.(check int) "baselined count" 1 d.Baseline.baselined;
  Alcotest.(check int) "no stale" 0 d.Baseline.stale;
  (* Multiset semantics: a baseline entry absorbs at most one finding. *)
  let d2 = Baseline.diff ~baseline:[ a ] [ a; a_shifted ] in
  Alcotest.(check int) "duplicate is fresh" 1 (List.length d2.Baseline.fresh);
  (* Fixed violations surface as stale entries. *)
  let d3 = Baseline.diff ~baseline:[ a; b ] [] in
  Alcotest.(check int) "all stale" 2 d3.Baseline.stale;
  Alcotest.(check bool) "nothing fresh" true (d3.Baseline.fresh = []);
  (* Empty baseline degenerates to plain linting, in canonical order. *)
  let d4 = Baseline.diff ~baseline:[] [ b; a ] in
  Alcotest.(check bool) "canonical order" true (d4.Baseline.fresh = [ a; b ])

let test_baseline_multiset_mixed () =
  (* One diff exercising all three buckets at once: the baseline carries a
     duplicated legacy entry, one copy got fixed (stale), the other still
     fires shifted (baselined), and an unrelated new violation appears
     (fresh). *)
  let a = fnd "no-wall-clock" "lib/a.ml" 3 "msg-a" in
  let a_shifted = fnd "no-wall-clock" "lib/a.ml" 11 "msg-a" in
  let c = fnd "todo-tracker" "lib/c.ml" 2 "msg-c" in
  let d = Baseline.diff ~baseline:[ a; a ] [ a_shifted; c ] in
  Alcotest.(check bool) "only the new finding gates" true
    (d.Baseline.fresh = [ c ]);
  Alcotest.(check int) "surviving copy absorbed" 1 d.Baseline.baselined;
  Alcotest.(check int) "fixed copy is stale" 1 d.Baseline.stale;
  (* Pruning: a baseline rewritten from current findings has no stale
     entries and absorbs everything. *)
  let pruned = Baseline.diff ~baseline:[ a_shifted; c ] [ a_shifted; c ] in
  Alcotest.(check int) "pruned: no stale" 0 pruned.Baseline.stale;
  Alcotest.(check int) "pruned: all absorbed" 2 pruned.Baseline.baselined;
  Alcotest.(check bool) "pruned: nothing fresh" true
    (pruned.Baseline.fresh = [])

let test_baseline_chain_roundtrip () =
  let chain =
    [
      { Finding.cfile = "lib/a.ml"; cline = 3; cname = "A.entry" };
      { Finding.cfile = "lib/b.ml"; cline = 9; cname = "B.src" };
    ]
  in
  let f =
    Finding.make ~rule:"nondet-taint" ~file:"lib/a.ml" ~line:3
      ~id:"A.entry<-B.src#wall-clock" ~chain "reaches a wall-clock read"
  in
  (* Chain findings survive the --json -> load round-trip intact. *)
  let path = Filename.temp_file "cold_lint_chain" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path (Report.json [ f ]);
  (match Baseline.load ~path with
  | Ok got -> Alcotest.(check bool) "chain round-trips" true (got = [ f ])
  | Error e -> Alcotest.fail e);
  (* The diff keys on the stable id: shifted lines, a reshuffled chain and
     even a reworded message still match the baseline entry. *)
  let moved =
    Finding.make ~rule:"nondet-taint" ~file:"lib/a.ml" ~line:40
      ~id:"A.entry<-B.src#wall-clock"
      ~chain:[ { Finding.cfile = "lib/a.ml"; cline = 40; cname = "A.entry" } ]
      "reworded"
  in
  let d = Baseline.diff ~baseline:[ f ] [ moved ] in
  Alcotest.(check bool) "id absorbs drift" true
    (d.Baseline.fresh = [] && d.Baseline.baselined = 1);
  (* A different source kind is a different id — it gates. *)
  let other =
    Finding.make ~rule:"nondet-taint" ~file:"lib/a.ml" ~line:3
      ~id:"A.entry<-B.src#stdlib-random" ~chain "reaches Stdlib.Random"
  in
  let d2 = Baseline.diff ~baseline:[ f ] [ other ] in
  Alcotest.(check int) "new source gates" 1 (List.length d2.Baseline.fresh)

(* --- interprocedural (deep) pass ----------------------------------------------- *)

let check_deep ?only ?deep sources =
  match Engine.check_sources ?only ?deep sources with
  | Ok fs -> fs
  | Error e -> Alcotest.fail e

(* The acceptance scenario from the issue: a nondeterminism source in one
   module, laundered through a helper in a second, handed to Cold_par by a
   third. Every file exports through an .mli. *)
let planted ?(noise = "let jitter () = Random.float 1.0")
    ?(worker =
      "let task x = Helper.scale x\n\n\
       let run pool xs = Par.map_array pool task xs") () =
  [
    ("lib/chaos/noise.ml", noise);
    ("lib/chaos/noise.mli", "val jitter : unit -> float");
    ("lib/chaos/helper.ml", "let scale x = x *. Noise.jitter ()");
    ("lib/chaos/helper.mli", "val scale : float -> float");
    ("lib/chaos/worker.ml", worker);
    ( "lib/chaos/worker.mli",
      "val task : float -> float\nval run : 'a -> float array -> float array"
    );
  ]

let chain_names (f : Finding.t) =
  List.map (fun l -> l.Finding.cname) f.Finding.chain

let test_deep_chain_detection () =
  let fs = check_deep ~only:[ "nondet-taint" ] (planted ()) in
  (* One finding per sink file: noise (the source itself is exported),
     helper, worker. *)
  Alcotest.(check (list string))
    "one finding per sink file"
    [ "lib/chaos/helper.ml"; "lib/chaos/noise.ml"; "lib/chaos/worker.ml" ]
    (List.map (fun f -> f.Finding.file) fs);
  let worker =
    List.find (fun f -> f.Finding.file = "lib/chaos/worker.ml") fs
  in
  Alcotest.(check (list string))
    "full three-file chain, sink to source"
    [ "Worker.task"; "Helper.scale"; "Noise.jitter" ]
    (chain_names worker);
  Alcotest.(check (option string))
    "stable id names defs, not lines"
    (Some "Worker.task<-Noise.jitter#stdlib-random")
    worker.Finding.id;
  (* The rendered forms carry the chain. *)
  Alcotest.(check bool) "text shows chain" true
    (let s = Finding.to_string worker in
     let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "chain:" && has "Noise.jitter");
  Alcotest.(check bool) "json shows chain" true
    (let s = Finding.to_json worker in
     let n = String.length s and sub = {|"chain": [|} in
     let m = String.length sub in
     let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
     go 0)

let test_deep_sink_suppression () =
  let worker =
    "(* lint: allow nondet-taint deliberate chaos injection *)\n\
     let task x = Helper.scale x\n\n\
     let run pool xs = Par.map_array pool task xs"
  in
  let fs = check_deep ~only:[ "nondet-taint" ] (planted ~worker ()) in
  (* The suppressed sink is silent; the other entry points still gate. *)
  Alcotest.(check (list string))
    "only the suppressed sink is silent"
    [ "lib/chaos/helper.ml"; "lib/chaos/noise.ml" ]
    (List.map (fun f -> f.Finding.file) fs)

let test_deep_source_suppression () =
  let noise =
    "(* lint: allow no-stdlib-random nondet-taint seeded chaos model *)\n\
     let jitter () = Random.float 1.0"
  in
  let fs = check_deep ~only:[ "nondet-taint" ] (planted ~noise ()) in
  Alcotest.(check (list string))
    "source suppression silences every chain" []
    (List.map (fun f -> f.Finding.file) fs)

let test_deep_alias_and_helper_sources () =
  (* [let cmp = compare] taints every caller of the alias. *)
  let aliased =
    [
      ( "lib/chaos/order.ml",
        "let cmp = compare\n\nlet canonical xs = List.sort cmp xs" );
      ("lib/chaos/order.mli", "val canonical : int list -> int list");
    ]
  in
  (match check_deep ~only:[ "nondet-taint" ] aliased with
  | [ f ] ->
    Alcotest.(check (option string))
      "alias chain id" (Some "Order.canonical<-Order.cmp#poly-compare")
      f.Finding.id
  | fs ->
    Alcotest.failf "expected 1 aliased-compare finding, got %d"
      (List.length fs));
  (* A named helper that accumulates inside [Hashtbl.iter helper tbl] is
     invisible to the token rule but is a deep source. *)
  let helper =
    [
      ( "lib/chaos/dumper.ml",
        "let out = ref []\n\n\
         let note k _ = out := k :: !out\n\n\
         let dump tbl = Hashtbl.iter note tbl" );
      ("lib/chaos/dumper.mli", "val dump : (int, int) Hashtbl.t -> unit");
    ]
  in
  Alcotest.(check (list string))
    "token pass is blind to the helper" []
    (rules_fired (check_deep ~deep:false helper
                 |> List.filter (fun f ->
                        f.Finding.rule = "hashtbl-iteration-order")));
  Alcotest.(check bool) "deep pass sees through the helper" true
    (List.exists
       (fun f -> f.Finding.rule = "nondet-taint")
       (check_deep ~only:[ "nondet-taint" ] helper))

let test_deep_par_mutation () =
  let racy =
    [
      ( "lib/chaos/counts.ml",
        "let hits = ref 0\n\n\
         let bump x =\n\
        \  incr hits;\n\
        \  x\n\n\
         let crunch pool xs = Par.map_array pool bump xs" );
      ( "lib/chaos/counts.mli",
        "val bump : int -> int\nval crunch : 'a -> int array -> int array" );
    ]
  in
  let fs = check_deep ~only:[ "par-unsync-mutation" ] racy in
  (match fs with
  | [ f ] ->
    Alcotest.(check (list string))
      "chain runs scheduler -> task"
      [ "Counts.crunch"; "Counts.bump" ]
      (chain_names f)
  | fs -> Alcotest.failf "expected 1 par-mutation finding, got %d"
            (List.length fs));
  (* Atomic mediation makes the same shape safe. *)
  let mediated =
    [
      ( "lib/chaos/counts.ml",
        "let hits = Atomic.make 0\n\n\
         let bump x =\n\
        \  Atomic.incr hits;\n\
        \  x\n\n\
         let crunch pool xs = Par.map_array pool bump xs" );
      ( "lib/chaos/counts.mli",
        "val bump : int -> int\nval crunch : 'a -> int array -> int array" );
    ]
  in
  Alcotest.(check (list string))
    "Atomic-mediated state is quiet" []
    (rules_fired (check_deep ~only:[ "par-unsync-mutation" ] mediated))

let test_deep_mutex_balance () =
  let leak =
    [
      ( "lib/chaos/locks.ml",
        "let m = Mutex.create ()\n\nlet grab () = Mutex.lock m" );
      ("lib/chaos/locks.mli", "val grab : unit -> unit");
    ]
  in
  Alcotest.(check (list string))
    "lock without unlock fires" [ "mutex-unbalanced" ]
    (rules_fired (check_deep ~only:[ "mutex-unbalanced" ] leak));
  (* An unlock reachable through a callee balances the lock. *)
  let balanced =
    [
      ( "lib/chaos/locks.ml",
        "let m = Mutex.create ()\n\n\
         let release () = Mutex.unlock m\n\n\
         let grab () =\n\
        \  Mutex.lock m;\n\
        \  release ()" );
      ("lib/chaos/locks.mli", "val grab : unit -> unit\nval release : unit -> unit");
    ]
  in
  Alcotest.(check (list string))
    "transitively balanced lock is quiet" []
    (rules_fired (check_deep ~only:[ "mutex-unbalanced" ] balanced))

let test_deep_flag_and_slicing () =
  (* ~deep:false restores token-only behaviour; the default runs both. *)
  Alcotest.(check (list string))
    "no-deep is token-only" [ "no-stdlib-random" ]
    (rules_fired (check_deep ~deep:false (planted ())));
  Alcotest.(check bool) "default runs the deep pass" true
    (List.mem "nondet-taint" (rules_fired (check_deep (planted ()))));
  (* --rules slices across the two passes. *)
  Alcotest.(check (list string))
    "token-only slice skips deep" [ "no-stdlib-random" ]
    (rules_fired (check_deep ~only:[ "no-stdlib-random" ] (planted ())));
  Alcotest.(check (list string))
    "mixed slice runs both" [ "no-stdlib-random"; "nondet-taint" ]
    (rules_fired
       (check_deep ~only:[ "no-stdlib-random"; "nondet-taint" ] (planted ())));
  match Engine.check_sources ~only:[ "no-such-rule" ] (planted ()) with
  | Error msg ->
    Alcotest.(check string) "unknown rule rejected" "unknown rule: no-such-rule"
      msg
  | Ok _ -> Alcotest.fail "expected Error for unknown rule"

let test_deep_catalogue_sync () =
  (* rules.ml catalogues the deep rules by literal name; taint.ml owns the
     implementations. The two lists must never drift. *)
  Alcotest.(check (list string))
    "catalogue matches implementation"
    (List.map (fun (i : Rules.info) -> i.Rules.iname) Rules.deep)
    Cold_lint.Taint.rule_names;
  List.iter
    (fun (i : Rules.info) ->
      Alcotest.(check bool) (i.Rules.iname ^ " known") true
        (Rules.known i.Rules.iname);
      Alcotest.(check bool) (i.Rules.iname ^ " not a token rule") true
        (Rules.find i.Rules.iname = None);
      match Rules.info i.Rules.iname with
      | Some info ->
        Alcotest.(check bool) (i.Rules.iname ^ " documented") true
          (String.length info.Rules.isummary > 0
          && String.length info.Rules.irationale > 0)
      | None -> Alcotest.failf "no info for %s" i.Rules.iname)
    Rules.deep;
  Alcotest.(check bool) "token rules visible through info" true
    (Rules.info "no-wall-clock" <> None)

(* --- reporters ----------------------------------------------------------------- *)

let test_reporters () =
  let f =
    Finding.make ~rule:"no-wall-clock" ~file:"lib/a.ml" ~line:3 "say \"hi\""
  in
  Alcotest.(check string)
    "text line" "lib/a.ml:3: [no-wall-clock] say \"hi\""
    (Finding.to_string f);
  Alcotest.(check string)
    "json object"
    {|{"rule": "no-wall-clock", "file": "lib/a.ml", "line": 3, "message": "say \"hi\""}|}
    (Finding.to_json f);
  Alcotest.(check string) "empty json" "[]\n" (Report.json []);
  Alcotest.(check bool) "clean text" true (Report.text [] = "cold_lint: clean\n");
  let body = Report.json [ f; f ] in
  Alcotest.(check bool) "json array wraps" true
    (String.length body > 2 && body.[0] = '[')

let test_rule_catalogue () =
  Alcotest.(check int) "eleven token rules" 11 (List.length Rules.all);
  Alcotest.(check int) "three deep rules" 3 (List.length Rules.deep);
  List.iter
    (fun (r : Rules.t) ->
      Alcotest.(check bool)
        (r.Rules.name ^ " findable") true
        (Rules.find r.Rules.name <> None);
      Alcotest.(check bool)
        (r.Rules.name ^ " documented") true
        (String.length r.Rules.summary > 0 && String.length r.Rules.rationale > 0))
    Rules.all

let () =
  Alcotest.run "cold_lint"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments and strings" `Quick
            test_lexer_comments_strings;
          Alcotest.test_case "quoted strings" `Quick test_lexer_quoted_strings;
          Alcotest.test_case "chars and line numbers" `Quick
            test_lexer_chars_and_lines;
        ] );
      ( "rules",
        [
          Alcotest.test_case "no-stdlib-random" `Quick test_no_stdlib_random;
          Alcotest.test_case "no-wall-clock" `Quick test_no_wall_clock;
          Alcotest.test_case "unix-dependency-fence" `Quick
            test_unix_dependency_fence;
          Alcotest.test_case "no-polymorphic-compare" `Quick
            test_no_polymorphic_compare;
          Alcotest.test_case "no-failwith-in-lib" `Quick test_no_failwith_in_lib;
          Alcotest.test_case "mli-required" `Quick test_mli_required;
          Alcotest.test_case "no-naked-float-eq" `Quick test_no_naked_float_eq;
          Alcotest.test_case "no-polymorphic-minmax" `Quick
            test_no_polymorphic_minmax;
          Alcotest.test_case "inferred float idents" `Quick
            test_inferred_float_idents;
          Alcotest.test_case "hashtbl-iteration-order" `Quick
            test_hashtbl_iteration_order;
          Alcotest.test_case "todo-tracker" `Quick test_todo_tracker;
          Alcotest.test_case "magic-cost-constant" `Quick
            test_magic_cost_constant;
        ] );
      ( "engine",
        [
          Alcotest.test_case "multi-rule suppression" `Quick
            test_multi_rule_suppression;
          Alcotest.test_case "unknown rule rejected" `Quick
            test_unknown_rule_rejected;
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "repo tree is clean" `Quick test_repo_is_clean;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "load" `Quick test_baseline_load;
          Alcotest.test_case "diff" `Quick test_baseline_diff;
          Alcotest.test_case "multiset mixed diff" `Quick
            test_baseline_multiset_mixed;
          Alcotest.test_case "chain round-trip" `Quick
            test_baseline_chain_roundtrip;
        ] );
      ( "deep",
        [
          Alcotest.test_case "chain detection" `Quick test_deep_chain_detection;
          Alcotest.test_case "sink suppression" `Quick
            test_deep_sink_suppression;
          Alcotest.test_case "source suppression" `Quick
            test_deep_source_suppression;
          Alcotest.test_case "alias and helper sources" `Quick
            test_deep_alias_and_helper_sources;
          Alcotest.test_case "par mutation" `Quick test_deep_par_mutation;
          Alcotest.test_case "mutex balance" `Quick test_deep_mutex_balance;
          Alcotest.test_case "flag and rule slicing" `Quick
            test_deep_flag_and_slicing;
          Alcotest.test_case "catalogue sync" `Quick test_deep_catalogue_sync;
        ] );
      ( "report",
        [
          Alcotest.test_case "text and json" `Quick test_reporters;
          Alcotest.test_case "catalogue" `Quick test_rule_catalogue;
        ] );
    ]
