(* Tests for the cold_lint static-analysis pass: lexer classification, each
   rule's positive / negative / suppression behaviour, scoping, and the
   reporters. *)

module Lexer = Cold_lint.Lexer
module Finding = Cold_lint.Finding
module Rules = Cold_lint.Rules
module Engine = Cold_lint.Engine
module Report = Cold_lint.Report
module Baseline = Cold_lint.Baseline

let lint ?only ?mli_exists ?(path = "lib/fake/fixture.ml") src =
  Engine.check_source ?only ?mli_exists ~path src

let rules_fired findings =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Finding.rule) findings)

let check_fires rule src =
  Alcotest.(check (list string))
    (rule ^ " fires") [ rule ]
    (rules_fired (lint ~only:[ rule ] src))

let check_clean rule src =
  Alcotest.(check (list string))
    (rule ^ " stays quiet") []
    (rules_fired (lint ~only:[ rule ] src))

(* --- lexer ------------------------------------------------------------------- *)

let kinds src =
  List.map (fun (t : Lexer.token) -> t.Lexer.kind) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check bool)
    "idents and ops" true
    (kinds "let x = compare a b"
    = Lexer.
        [ Ident "let"; Ident "x"; Op "="; Ident "compare"; Ident "a"; Ident "b" ]);
  Alcotest.(check bool)
    "float vs int" true
    (kinds "1 2.0 3e-4 0x1f"
    = Lexer.[ Int_lit "1"; Float_lit "2.0"; Float_lit "3e-4"; Int_lit "0x1f" ])

let test_lexer_comments_strings () =
  (* Tokens inside comments and strings must never look like code. *)
  Alcotest.(check bool)
    "nested comment" true
    (match kinds "(* a (* failwith *) b *) x" with
    | [ Lexer.Comment _; Lexer.Ident "x" ] -> true
    | _ -> false);
  Alcotest.(check bool)
    "string hides code" true
    (kinds {|"failwith (* not a comment"|} = [ Lexer.String_lit ]);
  Alcotest.(check bool)
    "quoted string literal" true
    (match kinds "{xx|failwith \"raw\"|xx} y" with
    | [ Lexer.String_lit; Lexer.Ident "y" ] -> true
    | _ -> false)

let test_lexer_chars_and_lines () =
  Alcotest.(check bool)
    "char literal vs type var" true
    (match kinds "'a' 'b" with
    | [ Lexer.Char_lit ] -> true
    | _ -> false);
  let tokens = Lexer.tokenize "x\n(* one\n   two *)\ny" in
  let line_of i = (List.nth tokens i).Lexer.line in
  let end_of i = (List.nth tokens i).Lexer.end_line in
  Alcotest.(check int) "x on line 1" 1 (line_of 0);
  Alcotest.(check int) "comment starts line 2" 2 (line_of 1);
  Alcotest.(check int) "comment ends line 3" 3 (end_of 1);
  Alcotest.(check int) "y on line 4" 4 (line_of 2)

(* --- rules: positive / negative / suppression -------------------------------- *)

let test_no_stdlib_random () =
  check_fires "no-stdlib-random" "let x = Random.int 5";
  check_fires "no-stdlib-random" "let () = Stdlib.Random.self_init ()";
  check_clean "no-stdlib-random" "let x = Prng.int rng 5";
  check_clean "no-stdlib-random" "(* Random.int would be wrong here *) let x = 1";
  check_clean "no-stdlib-random"
    "let x = Random.int 5 (* lint: allow no-stdlib-random *)"

let test_no_wall_clock () =
  check_fires "no-wall-clock" "let t = Sys.time ()";
  check_fires "no-wall-clock" "let t = Unix.gettimeofday ()";
  check_clean "no-wall-clock" "let t = Sys.timeout";
  (* bench/ is exempt by scope. *)
  Alcotest.(check (list string))
    "bench exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "no-wall-clock" ] ~path:"bench/micro.ml"
          "let t = Unix.gettimeofday ()"))

let test_no_polymorphic_compare () =
  check_fires "no-polymorphic-compare" "let xs = List.sort compare xs";
  check_fires "no-polymorphic-compare" "let c = Stdlib.compare a b";
  check_clean "no-polymorphic-compare" "let xs = List.sort Int.compare xs";
  check_clean "no-polymorphic-compare" "let compare a b = Int.compare a b";
  check_clean "no-polymorphic-compare" "let f = sort ~compare:Int.compare";
  check_clean "no-polymorphic-compare"
    "let xs = List.sort compare xs (* lint: allow no-polymorphic-compare *)";
  (* Suppression comment on the line above also covers the violation. *)
  check_clean "no-polymorphic-compare"
    "(* lint: allow no-polymorphic-compare *)\nlet xs = List.sort compare xs"

let test_no_failwith_in_lib () =
  check_fires "no-failwith-in-lib" "let f () = failwith \"nope\"";
  check_clean "no-failwith-in-lib" "let f () = invalid_arg \"nope\"";
  check_clean "no-failwith-in-lib" "let s = \"failwith\"";
  (* Out of scope: tests may failwith. *)
  Alcotest.(check (list string))
    "test scope exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "no-failwith-in-lib" ]
          ~path:"test/test_x.ml" "let f () = failwith \"nope\""))

let test_mli_required () =
  Alcotest.(check (list string))
    "missing mli flagged" [ "mli-required" ]
    (rules_fired (lint ~only:[ "mli-required" ] ~mli_exists:false "let x = 1"));
  Alcotest.(check (list string))
    "present mli ok" []
    (rules_fired (lint ~only:[ "mli-required" ] ~mli_exists:true "let x = 1"));
  Alcotest.(check (list string))
    "unknown stays quiet" []
    (rules_fired (lint ~only:[ "mli-required" ] "let x = 1"));
  check_clean "mli-required" "(* lint: allow mli-required *)\nlet x = 1"

let test_no_naked_float_eq () =
  check_fires "no-naked-float-eq" "let f x = if x = 0.0 then 1 else 2";
  check_fires "no-naked-float-eq" "let f x = x <> 1.0";
  check_fires "no-naked-float-eq" "let f x = when_ (0.5 = x)";
  check_fires "no-naked-float-eq" "let f x = x == 0.0";
  (* Bindings and record fields are not comparisons. *)
  check_clean "no-naked-float-eq" "let x = 0.0";
  check_clean "no-naked-float-eq" "let r = { load = 1.0; size = 100.0 }";
  check_clean "no-naked-float-eq" "let f ?(level = 0.95) () = level";
  check_clean "no-naked-float-eq" "let ok = Float.equal x 0.0";
  check_clean "no-naked-float-eq" "let ok = x <= 0.0 || x >= 1.0";
  check_clean "no-naked-float-eq"
    "let f x = if x = 0.0 then 1 else 2 (* lint: allow no-naked-float-eq *)"

let test_no_polymorphic_minmax () =
  check_fires "no-polymorphic-minmax" "let m = max 0.0 x";
  check_fires "no-polymorphic-minmax" "let m = Array.fold_left max 0.0 xs";
  check_fires "no-polymorphic-minmax" "let m = min x infinity";
  check_fires "no-polymorphic-minmax" "let c = compare x 1.5";
  (* Qualified, int-looking, defining and labelled uses stay quiet. *)
  check_clean "no-polymorphic-minmax" "let m = Float.max 0.0 x";
  check_clean "no-polymorphic-minmax" "let m = max 0 x";
  check_clean "no-polymorphic-minmax" "let m = max a b";
  check_clean "no-polymorphic-minmax" "let max a b = if a > b then a else b";
  check_clean "no-polymorphic-minmax" "let f = sort ~compare:Float.compare";
  (* A float past the argument window or a break token is out of reach. *)
  check_clean "no-polymorphic-minmax" "let m = max a b in x +. 0.5";
  check_clean "no-polymorphic-minmax" "let m = if max a b > 0 then 1.0 else 2.0";
  check_clean "no-polymorphic-minmax"
    "let m = max 0.0 x (* lint: allow no-polymorphic-minmax *)"

let test_inferred_float_idents () =
  (* The intra-file pass tracks let-bound floats, so unannotated uses of
     inferred-float identifiers fire even without a literal in the window. *)
  check_fires "no-polymorphic-minmax" "let x = 1.5\nlet m = max x y";
  check_fires "no-polymorphic-minmax" "let r = sqrt v in min r cap";
  check_fires "no-polymorphic-minmax" "let d = Float.of_int n in compare d y";
  check_fires "no-naked-float-eq" "let x = float_of_int n\nlet b = x <> y";
  check_fires "no-naked-float-eq" "let f (x : float) y = if x = y then 1 else 2";
  check_fires "no-naked-float-eq" "let cost : float = score g in cost == best";
  (* Rebinding to a non-float evicts the identifier. *)
  check_clean "no-polymorphic-minmax" "let x = 1.5\nlet x = 1\nlet m = max x y";
  check_clean "no-naked-float-eq" "let x = 1.5\nlet x = 1\nlet b = x <> y";
  (* Alias bindings are bindings, not comparisons. *)
  check_clean "no-naked-float-eq" "let x = 1.5\nlet y = x";
  check_clean "no-polymorphic-minmax" "let m = max a b in let x = 1.5 in x"

let test_hashtbl_iteration_order () =
  check_fires "hashtbl-iteration-order"
    "let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []";
  check_fires "hashtbl-iteration-order"
    "let () = Hashtbl.iter (fun k _ -> out := k :: !out) tbl";
  check_fires "hashtbl-iteration-order"
    "let () = Hashtbl.iter (fun k v -> Printf.printf \"%d %d\" k v) tbl";
  check_fires "hashtbl-iteration-order" "let s = Hashtbl.to_seq tbl";
  (* A canonicalizing sort upstream of the fold makes the order harmless. *)
  check_clean "hashtbl-iteration-order"
    "let xs =\n\
    \  List.sort\n\
    \    (fun (k1, _) (k2, _) -> Int.compare k1 k2)\n\
    \    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])";
  (* Per-binding in-place mutation is order-insensitive. *)
  check_clean "hashtbl-iteration-order"
    "let () = Hashtbl.iter (fun _ f -> f.remaining <- f.remaining -. dt) tbl";
  (* The blessed wrappers are the sanctioned spelling. *)
  check_clean "hashtbl-iteration-order"
    "let xs = Tbl.sorted_bindings ~cmp:Int.compare tbl";
  check_clean "hashtbl-iteration-order"
    "let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* lint: \
     allow hashtbl-iteration-order *)";
  (* lib/util/tbl.ml implements the wrappers, so raw iteration is exempt. *)
  Alcotest.(check (list string))
    "tbl.ml exempt" []
    (rules_fired
       (Engine.check_source
          ~only:[ "hashtbl-iteration-order" ]
          ~path:"lib/util/tbl.ml"
          "let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []"))

let test_todo_tracker () =
  check_fires "todo-tracker" "(* TODO fix the frobnicator *)";
  check_fires "todo-tracker" "(* FIXME *)";
  check_clean "todo-tracker" "(* TODO(alice): fix the frobnicator *)";
  check_clean "todo-tracker" "(* FIXME(#42) handle overflow *)";
  check_clean "todo-tracker" "(* the todo list datatype *)";
  check_clean "todo-tracker" "(* TODOS are plural words, not markers *)";
  check_clean "todo-tracker" "(* TODO later *) (* lint: allow todo-tracker *)"

let test_magic_cost_constant () =
  check_fires "magic-cost-constant" "let p = Cost.params ~k2:2e-4 ()";
  check_fires "magic-cost-constant" "let p = { p with k3 = 300.0 }";
  check_clean "magic-cost-constant" "let p = Cost.params ~k2 ()";
  check_clean "magic-cost-constant" "let p = Cost.params ~k1:unit_k1 ()";
  (* presets.ml is the sanctioned home. *)
  Alcotest.(check (list string))
    "presets exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "magic-cost-constant" ]
          ~path:"lib/core/presets.ml" "let p = Cost.params ~k2:2e-4 ()"));
  (* k-params in tests/bench are exploratory, not canonical. *)
  Alcotest.(check (list string))
    "test scope exempt" []
    (rules_fired
       (Engine.check_source ~only:[ "magic-cost-constant" ]
          ~path:"test/test_cost.ml" "let p = Cost.params ~k2:2e-4 ()"))

(* --- engine ------------------------------------------------------------------- *)

let test_multi_rule_suppression () =
  let src =
    "let x = Random.int 5 |> compare 3 (* lint: allow no-stdlib-random \
     no-polymorphic-compare *)"
  in
  Alcotest.(check (list string)) "both suppressed" [] (rules_fired (lint src))

let test_unknown_rule_rejected () =
  match Engine.check_paths ~only:[ "no-such-rule" ] [ "lib" ] with
  | Error msg ->
    Alcotest.(check bool) "mentions rule" true
      (String.length msg > 0 && msg = "unknown rule: no-such-rule")
  | Ok _ -> Alcotest.fail "expected Error for unknown rule"

let test_findings_sorted () =
  let src = "let f () = failwith (string_of_float (Sys.time ()))" in
  let fs = lint ~only:[ "no-failwith-in-lib"; "no-wall-clock" ] src in
  Alcotest.(check (list string))
    "canonical order" [ "no-failwith-in-lib"; "no-wall-clock" ]
    (List.map (fun f -> f.Finding.rule) fs)

let test_repo_is_clean () =
  (* The acceptance bar: the shipped tree has no violations beyond the
     committed baseline. Runs from test/ in the dune sandbox, so point at
     the project root via cwd. *)
  match
    Engine.check_paths [ "../lib"; "../bin"; "../test"; "../bench" ]
  with
  | Ok fs -> (
    let baseline =
      match Baseline.load ~path:"../lint-baseline.json" with
      | Ok b -> b
      | Error _ -> []
    in
    let d = Baseline.diff ~baseline fs in
    match d.Baseline.fresh with
    | [] -> ()
    | f :: _ ->
      Alcotest.failf "repo has %d new lint violation(s), first: %s"
        (List.length d.Baseline.fresh)
        (Finding.to_string f))
  | Error _ ->
    (* Source tree not materialized in this sandbox; the @lint alias covers
       the real run. *)
    ()

(* --- baseline ------------------------------------------------------------------ *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let fnd rule file line msg = Finding.make ~rule ~file ~line msg

let test_baseline_load () =
  let fs =
    [
      fnd "no-wall-clock" "lib/a.ml" 3 "say \"hi\"\tand\\more";
      fnd "todo-tracker" "lib/b.ml" 7 "bare TODO";
    ]
  in
  (* The baseline format IS the --json report, so a write/load round-trip
     must be the identity. *)
  let path = Filename.temp_file "cold_lint_baseline" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path (Report.json fs);
  (match Baseline.load ~path with
  | Ok got -> Alcotest.(check bool) "round-trips" true (got = fs)
  | Error e -> Alcotest.fail e);
  write_file path "{ \"not\": \"an array\" }";
  (match Baseline.load ~path with
  | Error msg ->
    Alcotest.(check bool) "error names the file" true
      (String.length msg > 0
      && String.sub msg 0 (String.length path) = path)
  | Ok _ -> Alcotest.fail "non-array baseline accepted");
  write_file path "[ { \"rule\": \"r\" } ]";
  (match Baseline.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete finding accepted");
  write_file path "[] trailing";
  (match Baseline.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing content accepted");
  match Baseline.load ~path:"no_such_baseline.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline accepted"

let test_baseline_diff () =
  let a = fnd "no-wall-clock" "lib/a.ml" 3 "msg-a" in
  let a_shifted = fnd "no-wall-clock" "lib/a.ml" 9 "msg-a" in
  let b = fnd "todo-tracker" "lib/b.ml" 7 "msg-b" in
  (* Line shifts are absorbed; genuinely new findings are fresh. *)
  let d = Baseline.diff ~baseline:[ a ] [ a_shifted; b ] in
  Alcotest.(check bool) "line shift absorbed" true (d.Baseline.fresh = [ b ]);
  Alcotest.(check int) "baselined count" 1 d.Baseline.baselined;
  Alcotest.(check int) "no stale" 0 d.Baseline.stale;
  (* Multiset semantics: a baseline entry absorbs at most one finding. *)
  let d2 = Baseline.diff ~baseline:[ a ] [ a; a_shifted ] in
  Alcotest.(check int) "duplicate is fresh" 1 (List.length d2.Baseline.fresh);
  (* Fixed violations surface as stale entries. *)
  let d3 = Baseline.diff ~baseline:[ a; b ] [] in
  Alcotest.(check int) "all stale" 2 d3.Baseline.stale;
  Alcotest.(check bool) "nothing fresh" true (d3.Baseline.fresh = []);
  (* Empty baseline degenerates to plain linting, in canonical order. *)
  let d4 = Baseline.diff ~baseline:[] [ b; a ] in
  Alcotest.(check bool) "canonical order" true (d4.Baseline.fresh = [ a; b ])

(* --- reporters ----------------------------------------------------------------- *)

let test_reporters () =
  let f =
    Finding.make ~rule:"no-wall-clock" ~file:"lib/a.ml" ~line:3 "say \"hi\""
  in
  Alcotest.(check string)
    "text line" "lib/a.ml:3: [no-wall-clock] say \"hi\""
    (Finding.to_string f);
  Alcotest.(check string)
    "json object"
    {|{"rule": "no-wall-clock", "file": "lib/a.ml", "line": 3, "message": "say \"hi\""}|}
    (Finding.to_json f);
  Alcotest.(check string) "empty json" "[]\n" (Report.json []);
  Alcotest.(check bool) "clean text" true (Report.text [] = "cold_lint: clean\n");
  let body = Report.json [ f; f ] in
  Alcotest.(check bool) "json array wraps" true
    (String.length body > 2 && body.[0] = '[')

let test_rule_catalogue () =
  Alcotest.(check int) "ten rules" 10 (List.length Rules.all);
  List.iter
    (fun (r : Rules.t) ->
      Alcotest.(check bool)
        (r.Rules.name ^ " findable") true
        (Rules.find r.Rules.name <> None);
      Alcotest.(check bool)
        (r.Rules.name ^ " documented") true
        (String.length r.Rules.summary > 0 && String.length r.Rules.rationale > 0))
    Rules.all

let () =
  Alcotest.run "cold_lint"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments and strings" `Quick
            test_lexer_comments_strings;
          Alcotest.test_case "chars and line numbers" `Quick
            test_lexer_chars_and_lines;
        ] );
      ( "rules",
        [
          Alcotest.test_case "no-stdlib-random" `Quick test_no_stdlib_random;
          Alcotest.test_case "no-wall-clock" `Quick test_no_wall_clock;
          Alcotest.test_case "no-polymorphic-compare" `Quick
            test_no_polymorphic_compare;
          Alcotest.test_case "no-failwith-in-lib" `Quick test_no_failwith_in_lib;
          Alcotest.test_case "mli-required" `Quick test_mli_required;
          Alcotest.test_case "no-naked-float-eq" `Quick test_no_naked_float_eq;
          Alcotest.test_case "no-polymorphic-minmax" `Quick
            test_no_polymorphic_minmax;
          Alcotest.test_case "inferred float idents" `Quick
            test_inferred_float_idents;
          Alcotest.test_case "hashtbl-iteration-order" `Quick
            test_hashtbl_iteration_order;
          Alcotest.test_case "todo-tracker" `Quick test_todo_tracker;
          Alcotest.test_case "magic-cost-constant" `Quick
            test_magic_cost_constant;
        ] );
      ( "engine",
        [
          Alcotest.test_case "multi-rule suppression" `Quick
            test_multi_rule_suppression;
          Alcotest.test_case "unknown rule rejected" `Quick
            test_unknown_rule_rejected;
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "repo tree is clean" `Quick test_repo_is_clean;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "load" `Quick test_baseline_load;
          Alcotest.test_case "diff" `Quick test_baseline_diff;
        ] );
      ( "report",
        [
          Alcotest.test_case "text and json" `Quick test_reporters;
          Alcotest.test_case "catalogue" `Quick test_rule_catalogue;
        ] );
    ]
