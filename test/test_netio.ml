(* Tests for DOT/GML/edge-list I/O. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Network = Cold_net.Network
module Dot = Cold_netio.Dot
module Gml = Cold_netio.Gml
module Edge_list = Cold_netio.Edge_list

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Unwrap a parser result; tests operate on known-good inputs. *)
let ok_exn name = function
  | Ok g -> g
  | Error e ->
    Alcotest.failf "%s: unexpected parse error: %s" name
      (Cold_netio.Parse_error.to_string e)

let sample_network () =
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 0.5 1.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 1.0; 2.0; 3.0 |] in
  Network.build ctx (Builders.path 3)

let test_dot_graph () =
  let s = Dot.of_graph ~name:"g" (Builders.path 3) in
  Alcotest.(check bool) "header" true (contains s "graph g {");
  Alcotest.(check bool) "edge 0-1" true (contains s "0 -- 1");
  Alcotest.(check bool) "edge 1-2" true (contains s "1 -- 2");
  Alcotest.(check bool) "closes" true (contains s "}")

let test_dot_network () =
  let s = Dot.of_network (sample_network ()) in
  Alcotest.(check bool) "positions" true (contains s "pos=");
  Alcotest.(check bool) "capacity labels" true (contains s "label=");
  (* PoP 1 has degree 2 → box; leaves → circle. *)
  Alcotest.(check bool) "core box" true (contains s "shape=box");
  Alcotest.(check bool) "leaf circle" true (contains s "shape=circle")

let test_dot_write_file () =
  let path = Filename.temp_file "cold_test" ".dot" in
  Dot.write_file ~path "graph x {}\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "written" "graph x {}" line

let test_gml () =
  let s = Gml.of_network ~label:"test" (sample_network ()) in
  Alcotest.(check bool) "label" true (contains s "label \"test\"");
  Alcotest.(check bool) "nodes" true (contains s "node [");
  Alcotest.(check bool) "edges" true (contains s "edge [");
  Alcotest.(check bool) "graphics" true (contains s "graphics [");
  Alcotest.(check bool) "capacity attr" true (contains s "capacity");
  let sg = Gml.of_graph (Builders.star 4) in
  Alcotest.(check bool) "graph form" true (contains sg "source 0")

let test_edge_list_round_trip () =
  let rng = Prng.create 1 in
  for _ = 1 to 20 do
    let g = Builders.random_tree (2 + Prng.int rng 20) rng in
    let s = Edge_list.to_string g in
    let h = ok_exn "edge list" (Edge_list.of_string s) in
    Alcotest.(check bool) "round trip" true (Graph.equal g h)
  done

let test_edge_list_comments_blanks () =
  let g = ok_exn "comments" (Edge_list.of_string "# comment\n3 2\n\n0 1\n# another\n1 2\n") in
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "edges" 2 (Graph.edge_count g)

let expect_failure ?line name input =
  match Edge_list.of_string input with
  | Error e ->
    Option.iter
      (fun l -> Alcotest.(check int) (name ^ ": error line") l e.Cold_netio.Parse_error.line)
      line
  | Ok _ -> Alcotest.failf "%s: expected parse error" name

let test_edge_list_errors () =
  expect_failure ~line:0 "empty" "";
  expect_failure ~line:0 "only comments" "# a\n\n# b\n";
  expect_failure ~line:1 "bad header" "x y\n";
  expect_failure ~line:1 "negative header" "-1 0\n";
  expect_failure ~line:2 "out of range" "2 1\n0 5\n";
  expect_failure ~line:2 "self loop" "3 1\n1 1\n";
  expect_failure ~line:1 "wrong count" "3 5\n0 1\n";
  expect_failure ~line:2 "three fields" "2 1\n0 1 9\n";
  expect_failure ~line:2 "non-integer edge" "2 1\nzero 1\n";
  (* Line numbers count raw input lines, so comments and blanks offset the
     reported position. *)
  expect_failure ~line:5 "comments offset the count" "# c\n\n3 2\n0 1\n0 9\n"

let test_edge_list_files () =
  let path = Filename.temp_file "cold_test" ".edges" in
  let g = Builders.cycle 6 in
  Edge_list.write_file ~path g;
  let h = ok_exn "edge file" (Edge_list.read_file ~path) in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (Graph.equal g h)

(* --- GML parser --------------------------------------------------------------- *)

module Gml_parser = Cold_netio.Gml_parser

let test_gml_parse_writer_output () =
  let g = Builders.cycle 7 in
  Alcotest.(check bool) "round trip via writer" true (Gml_parser.roundtrip_check g);
  let net = sample_network () in
  let parsed = ok_exn "network gml" (Gml_parser.parse (Gml.of_network net)) in
  Alcotest.(check bool) "network GML parses to same topology" true
    (Graph.equal parsed net.Network.graph)

let test_gml_parse_zoo_style () =
  (* Sparse ids, labels, nested graphics, Zoo-style attributes. *)
  let text =
    {|
Creator "Topology Zoo Toolset"
graph [
  directed 0
  label "TestNet"
  node [ id 10 label "Adelaide" graphics [ x 138.6 y -34.9 w 10 ] ]
  node [ id 20 label "Sydney" Internal 1 ]
  node [ id 7 label "Melbourne" ]
  edge [ source 10 target 20 LinkLabel "10 Gbps" ]
  edge [ source 20 target 7 ]
  edge [ source 7 target 7 ]
  edge [ source 10 target 20 ]
]
|}
  in
  let g = ok_exn "zoo gml" (Gml_parser.parse text) in
  Alcotest.(check int) "three nodes" 3 (Graph.node_count g);
  (* ids compact in order 7 -> 0, 10 -> 1, 20 -> 2; self-loop dropped,
     duplicate collapsed. *)
  Alcotest.(check int) "two edges" 2 (Graph.edge_count g);
  Alcotest.(check bool) "10-20 edge" true (Graph.mem_edge g 1 2);
  Alcotest.(check bool) "20-7 edge" true (Graph.mem_edge g 0 2)

let gml_expect_failure ?line name input =
  match Gml_parser.parse input with
  | Error e ->
    Option.iter
      (fun l -> Alcotest.(check int) (name ^ ": error line") l e.Cold_netio.Parse_error.line)
      line
  | Ok _ -> Alcotest.failf "%s: expected parse error" name

let test_gml_parse_errors () =
  (* Whole-document problems report line 0; everything else reports the
     line of the offending key, even in multi-line input. *)
  gml_expect_failure ~line:0 "no graph" "node [ id 1 ]";
  gml_expect_failure ~line:0 "trailing bracket" "graph [ ]\n]";
  gml_expect_failure ~line:1 "unbalanced" "graph [\n  node [ id 1 ]";
  gml_expect_failure ~line:2 "node without id"
    "graph [\n  node [ label \"x\" ]\n]";
  gml_expect_failure ~line:2 "non-integer node id"
    "graph [\n  node [ id seven ]\n]";
  gml_expect_failure ~line:2 "malformed node" "graph [\n  node 5\n]";
  gml_expect_failure ~line:3 "edge to unknown node"
    "graph [\n  node [ id 1 ]\n  edge [ source 1 target 2 ]\n]";
  gml_expect_failure ~line:3 "non-integer edge endpoint"
    "graph [\n  node [ id 1 ]\n  edge [ source 1 target x ]\n]";
  gml_expect_failure ~line:3 "edge without source"
    "graph [\n  node [ id 1 ]\n  edge [ target 1 ]\n]";
  gml_expect_failure ~line:2 "malformed edge" "graph [\n  edge 5\n]";
  gml_expect_failure ~line:2 "unterminated string" "graph [\n  label \"oops\n]";
  gml_expect_failure ~line:2 "key without value" "graph [\n  node [ id ]\n]";
  gml_expect_failure ~line:2 "unexpected bracket" "graph [\n  [ id 1 ]\n]"

let test_gml_file_round_trip () =
  let path = Filename.temp_file "cold_test" ".gml" in
  let g = Builders.double_star 9 in
  Dot.write_file ~path (Gml.of_graph g);
  let h = ok_exn "gml file" (Gml_parser.read_file ~path) in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (Graph.equal g h)

(* --- ASCII map ------------------------------------------------------------- *)

module Ascii_map = Cold_netio.Ascii_map

let test_ascii_map () =
  let art = Ascii_map.render ~width:40 ~height:12 (sample_network ()) in
  let lines = String.split_on_char '\n' art in
  Alcotest.(check int) "height + legend" 13 (List.length lines);
  List.iteri
    (fun i l -> if i < 12 then Alcotest.(check int) "width" 40 (String.length l))
    lines;
  Alcotest.(check bool) "has hub marker" true (contains art "#");
  Alcotest.(check bool) "has leaf marker" true (contains art "o");
  Alcotest.(check bool) "has links" true (contains art ".");
  Alcotest.(check bool) "legend" true (contains art "legend:")

let test_ascii_map_errors () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Ascii_map.render_graph: size mismatch")
    (fun () ->
      ignore (Ascii_map.render_graph [| Point.make 0.0 0.0 |] (Builders.path 3)));
  Alcotest.check_raises "tiny canvas" (Invalid_argument "Ascii_map: canvas too small")
    (fun () ->
      ignore
        (Ascii_map.render_graph ~width:2 ~height:2
           [| Point.make 0.0 0.0 |]
           (Graph.create 1)))

let qcheck_gml_round_trip =
  QCheck.Test.make ~name:"GML writer/parser round-trips arbitrary graphs" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g = Graph.create 10 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) pairs;
      Gml_parser.roundtrip_check g)

let qcheck_edge_list_round_trip =
  QCheck.Test.make ~name:"edge list round-trips arbitrary graphs" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g = Graph.create 10 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) pairs;
      match Edge_list.of_string (Edge_list.to_string g) with
      | Ok h -> Graph.equal g h
      | Error _ -> false)

let () =
  Alcotest.run "cold_netio"
    [
      ( "dot",
        [
          Alcotest.test_case "graph" `Quick test_dot_graph;
          Alcotest.test_case "network" `Quick test_dot_network;
          Alcotest.test_case "write file" `Quick test_dot_write_file;
        ] );
      ("gml", [ Alcotest.test_case "network" `Quick test_gml ]);
      ( "ascii_map",
        [
          Alcotest.test_case "render" `Quick test_ascii_map;
          Alcotest.test_case "errors" `Quick test_ascii_map_errors;
        ] );
      ( "gml_parser",
        [
          Alcotest.test_case "writer output" `Quick test_gml_parse_writer_output;
          Alcotest.test_case "zoo style" `Quick test_gml_parse_zoo_style;
          Alcotest.test_case "errors" `Quick test_gml_parse_errors;
          Alcotest.test_case "file round trip" `Quick test_gml_file_round_trip;
        ] );
      ( "edge_list",
        [
          Alcotest.test_case "round trip" `Quick test_edge_list_round_trip;
          Alcotest.test_case "comments/blanks" `Quick test_edge_list_comments_blanks;
          Alcotest.test_case "errors" `Quick test_edge_list_errors;
          Alcotest.test_case "files" `Quick test_edge_list_files;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_edge_list_round_trip;
          QCheck_alcotest.to_alcotest qcheck_gml_round_trip;
        ] );
    ]
