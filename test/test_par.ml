(* Tests for the domain pool (lib/par) and the determinism contract of the
   parallel evaluation paths: Ga / Ensemble / Brute_force must be
   bit-identical at every domain count, and the fitness memo must never
   change results. *)

module Par = Cold_par.Par
module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Ga = Cold.Ga

let domain_counts = [ 1; 2; 8 ]

(* --- pool semantics ----------------------------------------------------------- *)

let test_resolve () =
  Alcotest.(check int) "default is sequential" 1 (Par.resolve ());
  Alcotest.(check int) "1 is sequential" 1 (Par.resolve ~domains:1 ());
  Alcotest.(check int) "k passes through" 5 (Par.resolve ~domains:5 ());
  Alcotest.(check bool) "0 autodetects >= 1" true (Par.resolve ~domains:0 () >= 1);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Par.resolve: domains must be >= 0") (fun () ->
      ignore (Par.resolve ~domains:(-1) ()))

let test_map_matches_sequential () =
  let xs = List.init 103 (fun i -> i) in
  let f x = (x * x) - (3 * x) in
  let expected = List.map f xs in
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "map @ %d domains" domains)
            expected (Par.map pool f xs);
          Alcotest.(check (array int))
            (Printf.sprintf "map_array @ %d domains" domains)
            (Array.of_list expected)
            (Par.map_array pool f (Array.of_list xs))))
    domain_counts

let test_empty_and_tiny_inputs () =
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          Alcotest.(check (array int)) "empty" [||] (Par.map_array pool succ [||]);
          Alcotest.(check (array int)) "singleton" [| 8 |]
            (Par.map_array pool succ [| 7 |])))
    domain_counts

let test_pool_reuse () =
  (* One pool, many maps: workers must survive across calls. *)
  Par.with_pool ~domains:4 (fun pool ->
      for round = 1 to 5 do
        let n = round * 17 in
        let got = Par.map_array pool (fun i -> i + round) (Array.init n Fun.id) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init n (fun i -> i + round))
          got
      done)

exception Boom of int

let test_exception_propagation () =
  (* The smallest failing index wins, at every domain count — same exception
     a sequential left-to-right run would report first. *)
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "min index raises @ %d domains" domains)
            (Boom 3)
            (fun () ->
              ignore
                (Par.map_array pool
                   (fun i -> if i >= 3 && i mod 2 = 1 then raise (Boom i) else i)
                   (Array.init 64 Fun.id)));
          (* The pool is still usable after a raising map. *)
          Alcotest.(check (array int)) "pool survives" [| 0; 1; 2 |]
            (Par.map_array pool Fun.id [| 0; 1; 2 |])))
    domain_counts

let test_shutdown_idempotent () =
  let pool = Par.create ~domains:3 in
  Alcotest.(check int) "parallelism" 3 (Par.parallelism pool);
  Par.shutdown pool;
  Par.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Par.map_array: pool is shut down") (fun () ->
      ignore (Par.map_array pool Fun.id [| 1 |]))

(* --- fitness cache ------------------------------------------------------------ *)

let test_fitness_cache () =
  let module Fc = Cold.Fitness_cache in
  let cache = Fc.create ~slots:64 in
  let calls = ref 0 in
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  let eval graph =
    Fc.find_or_compute cache graph (fun () ->
        incr calls;
        float_of_int (Graph.edge_count graph) *. 1.5)
  in
  let a = eval g in
  let b = eval (Graph.copy g) in
  Alcotest.(check bool) "hit returns exact float" true (Float.equal a b);
  Alcotest.(check int) "objective ran once" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Fc.hits cache);
  Alcotest.(check int) "one miss" 1 (Fc.misses cache);
  Alcotest.(check int) "one occupied slot" 1 (Fc.entries cache);
  Alcotest.(check bool) "fill is entries/capacity" true
    (Float.equal (Fc.fill cache) (1.0 /. 64.0));
  (* A different graph in the same slot evicts, never corrupts. *)
  Graph.add_edge g 2 3;
  let c = eval g in
  Alcotest.(check bool) "distinct graph recomputed" true
    (Float.equal c (float_of_int (Graph.edge_count g) *. 1.5));
  Alcotest.(check int) "second miss" 2 (Fc.misses cache);
  (* slots = 0 disables caching but keeps counting misses. *)
  let off = Fc.create ~slots:0 in
  let calls0 = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Fc.find_or_compute off g (fun () ->
           incr calls0;
           0.0))
  done;
  Alcotest.(check int) "disabled cache always computes" 3 !calls0;
  Alcotest.(check int) "disabled cache no hits" 0 (Fc.hits off);
  Alcotest.(check int) "disabled cache stores nothing" 0 (Fc.entries off);
  Alcotest.(check bool) "zero-slot fill is 0" true
    (Float.equal (Fc.fill off) 0.0)

let test_fitness_cache_collision () =
  let module Fc = Cold.Fitness_cache in
  (* slots = 1 forces every fingerprint into the same slot: a guaranteed
     collision between non-equal graphs. The structural check must reject
     the resident entry and recompute — a collision may cost a miss but can
     never return the wrong cost. *)
  let cache = Fc.create ~slots:1 in
  let g1 = Graph.create 5 in
  Graph.add_edge g1 0 1;
  let g2 = Graph.create 5 in
  Graph.add_edge g2 2 3;
  Graph.add_edge g2 3 4;
  Alcotest.(check bool) "graphs differ" false (Graph.equal g1 g2);
  let cost g = float_of_int (Graph.edge_count g) *. 2.5 in
  let eval g = Fc.find_or_compute cache g (fun () -> cost g) in
  Alcotest.(check bool) "g1 computed" true (Float.equal (eval g1) (cost g1));
  Alcotest.(check bool) "g2 correct despite shared slot" true
    (Float.equal (eval g2) (cost g2));
  Alcotest.(check int) "both were misses" 2 (Fc.misses cache);
  Alcotest.(check int) "no false hit" 0 (Fc.hits cache);
  (* g2 evicted g1, so g1 again is a third miss — with the right value. *)
  Alcotest.(check bool) "evicted g1 recomputed" true
    (Float.equal (eval g1) (cost g1));
  Alcotest.(check int) "eviction costs a miss, not a wrong value" 3
    (Fc.misses cache);
  (* Eviction replaces in place: occupancy never exceeds capacity. *)
  Alcotest.(check int) "entries stable under eviction" 1 (Fc.entries cache);
  Alcotest.(check bool) "full single-slot cache" true
    (Float.equal (Fc.fill cache) 1.0);
  (* Same property at a non-degenerate capacity: search single-edge graphs
     for a pair whose fingerprints land in the same direct-mapped slot. *)
  let capacity = 8 in
  let slot g =
    Int64.to_int
      (Int64.rem
         (Int64.logand (Graph.fingerprint g) Int64.max_int)
         (Int64.of_int capacity))
  in
  let mk i j =
    let g = Graph.create 6 in
    Graph.add_edge g i j;
    g
  in
  let base = mk 0 1 in
  let siblings = ref [] in
  for i = 0 to 5 do
    for j = i + 1 to 5 do
      if not (i = 0 && j = 1) then siblings := mk i j :: !siblings
    done
  done;
  match List.find_opt (fun g -> slot g = slot base) !siblings with
  | None -> () (* no same-slot sibling among these fingerprints; the
                  slots = 1 case above already pins the property *)
  | Some other ->
    let c = Fc.create ~slots:capacity in
    let e g = Fc.find_or_compute c g (fun () -> cost g) in
    Alcotest.(check bool) "base cost" true (Float.equal (e base) (cost base));
    Alcotest.(check bool) "collider cost correct" true
      (Float.equal (e other) (cost other));
    Alcotest.(check int) "collision never reads as a hit" 0 (Fc.hits c)

(* --- GA determinism across domain counts -------------------------------------- *)

let small_settings =
  {
    Ga.default_settings with
    Ga.population_size = 20;
    generations = 12;
    num_saved = 4;
    num_crossover = 10;
    num_mutation = 6;
  }

let ga_run ?cache_slots ?incremental ?repair ~domains () =
  let ctx = Context.generate (Context.default_spec ~n:10) (Prng.create 11) in
  Ga.run ?cache_slots ?incremental ?repair ~domains small_settings
    (Cost.params ~k2:2e-4 ()) ctx (Prng.create 12)

let check_same_result label (a : Ga.result) (b : Ga.result) =
  Alcotest.(check bool)
    (label ^ ": best graph") true
    (Graph.equal a.Ga.best b.Ga.best);
  Alcotest.(check bool)
    (label ^ ": best cost bit-identical") true
    (Float.equal a.Ga.best_cost b.Ga.best_cost);
  Alcotest.(check bool)
    (label ^ ": history bit-identical") true
    (Array.for_all2 Float.equal a.Ga.history b.Ga.history);
  Alcotest.(check int) (label ^ ": evaluations") a.Ga.evaluations b.Ga.evaluations;
  Alcotest.(check bool)
    (label ^ ": final population") true
    (Array.for_all2
       (fun (g1, c1) (g2, c2) -> Graph.equal g1 g2 && Float.equal c1 c2)
       a.Ga.final_population b.Ga.final_population)

let test_ga_domains_deterministic () =
  let seq = ga_run ~domains:1 () in
  List.iter
    (fun domains ->
      check_same_result
        (Printf.sprintf "%d domains" domains)
        seq
        (ga_run ~domains ()))
    [ 2; 4 ]

let test_ga_incremental_neutral () =
  (* The delta-aware evaluation path must be invisible in results: full
     recomputation at 1 domain is the reference, and the default engine —
     dynamic in-place tree repair — must reproduce it bit-for-bit at 1, 2,
     4 and 8 domains. *)
  let full = ga_run ~incremental:false ~domains:1 () in
  List.iter
    (fun domains ->
      check_same_result
        (Printf.sprintf "dynamic @ %d domains vs full" domains)
        full
        (ga_run ~incremental:true ~domains ()))
    [ 1; 2; 4; 8 ]

let test_ga_mark_dirty_neutral () =
  (* Same oracle for the mark-dirty engine (repair:false): selecting it must
     change nothing but running time. *)
  let full = ga_run ~incremental:false ~domains:1 () in
  List.iter
    (fun domains ->
      check_same_result
        (Printf.sprintf "mark-dirty @ %d domains vs full" domains)
        full
        (ga_run ~incremental:true ~repair:false ~domains ()))
    [ 1; 4 ]

let test_ga_cache_neutral () =
  let off = ga_run ~domains:1 ~cache_slots:0 () in
  let on_ = ga_run ~domains:1 () in
  check_same_result "cache on vs off" off on_;
  Alcotest.(check int) "cache off has no hits" 0 off.Ga.cache_hits;
  Alcotest.(check int) "hits + misses = evaluations" on_.Ga.evaluations
    (on_.Ga.cache_hits + on_.Ga.cache_misses)

(* --- ensemble / brute force across domain counts ------------------------------- *)

let test_ensemble_domains_deterministic () =
  let cfg =
    {
      (Cold.Synthesis.default_config ()) with
      Cold.Synthesis.ga = small_settings;
    }
  in
  let spec = Context.default_spec ~n:8 in
  let a = Cold.Ensemble.generate ~domains:1 cfg spec ~count:3 ~seed:5 in
  let b = Cold.Ensemble.generate ~domains:2 cfg spec ~count:3 ~seed:5 in
  Alcotest.(check int) "same count" (Array.length a.Cold.Ensemble.networks)
    (Array.length b.Cold.Ensemble.networks);
  Array.iteri
    (fun i (na : Cold_net.Network.t) ->
      let nb = b.Cold.Ensemble.networks.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "member %d topology" i)
        true
        (Graph.equal na.Cold_net.Network.graph nb.Cold_net.Network.graph))
    a.Cold.Ensemble.networks

let test_brute_force_domains_deterministic () =
  let ctx = Context.generate (Context.default_spec ~n:5) (Prng.create 21) in
  let params = Cost.params () in
  let (g1, c1) = Cold.Brute_force.optimal ~domains:1 params ctx in
  let (g3, c3) = Cold.Brute_force.optimal ~domains:3 params ctx in
  Alcotest.(check bool) "same optimum graph" true (Graph.equal g1 g3);
  Alcotest.(check bool) "same optimum cost" true (Float.equal c1 c3)

let () =
  Alcotest.run "cold_par"
    [
      ( "pool",
        [
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "empty and tiny inputs" `Quick
            test_empty_and_tiny_inputs;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent;
        ] );
      ( "cache",
        [
          Alcotest.test_case "fitness cache" `Quick test_fitness_cache;
          Alcotest.test_case "forced collision" `Quick
            test_fitness_cache_collision;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ga across domain counts" `Slow
            test_ga_domains_deterministic;
          Alcotest.test_case "ga incremental neutral at 1/2/4/8 domains" `Slow
            test_ga_incremental_neutral;
          Alcotest.test_case "ga mark-dirty engine neutral" `Slow
            test_ga_mark_dirty_neutral;
          Alcotest.test_case "ga cache neutral" `Slow test_ga_cache_neutral;
          Alcotest.test_case "ensemble across domain counts" `Slow
            test_ensemble_domains_deterministic;
          Alcotest.test_case "brute force across domain counts" `Quick
            test_brute_force_domains_deterministic;
        ] );
    ]
