(* Tests for Cold_net.Resilience. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Network = Cold_net.Network
module Resilience = Cold_net.Resilience

let feq = Alcotest.(check (float 1e-6))

(* 4 PoPs on a line with populations 1,1,1,1 on a path topology: every link
   is a bridge with hand-computable stranded fractions. *)
let line_net () =
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 2.0 0.0; Point.make 3.0 0.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 1.0; 1.0; 1.0; 1.0 |] in
  Network.build ctx (Builders.path 4)

(* Cycle topology on the same context: no bridge, nothing stranded. *)
let ring_net () =
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 1.0 1.0; Point.make 0.0 1.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 1.0; 1.0; 1.0; 1.0 |] in
  Network.build ctx (Builders.cycle 4)

let test_link_failure_fractions () =
  let net = line_net () in
  (* Total pair demand: 6 pairs x 2 = 12. Cutting (0,1) strands pairs
     {0,1},{0,2},{0,3}: 6/12 = 0.5? No: pair demand of each pair = 2, three
     pairs cut -> 6; total 12 -> 0.5. Cutting (1,2) strands 4 pairs x 2 = 8
     -> 2/3. *)
  feq "end link" 0.5 (Resilience.stranded_by_link_failure net 0 1);
  feq "middle link" (8.0 /. 12.0) (Resilience.stranded_by_link_failure net 1 2);
  feq "not a link" 0.0 (Resilience.stranded_by_link_failure net 0 3)

let test_ring_is_survivable () =
  let net = ring_net () in
  Alcotest.(check bool) "survivable" true (Resilience.survivable net);
  feq "no stranding" 0.0 (Resilience.stranded_by_link_failure net 0 1);
  Alcotest.(check (list int)) "no SPOFs" [] (Resilience.single_points_of_failure net)

let test_path_not_survivable () =
  let net = line_net () in
  Alcotest.(check bool) "not survivable" false (Resilience.survivable net);
  Alcotest.(check (list int)) "inner SPOFs" [ 1; 2 ]
    (Resilience.single_points_of_failure net)

let test_node_failure () =
  let net = line_net () in
  (* Node 1 fails: its own traffic 2*row_total(1) = 2*3*2/2... populations all
     1: row_total(1) = 3; own = 6. Plus separated pairs {0,2},{0,3}: 4.
     Total demand 12 -> (6+4)/12. *)
  feq "middle node" (10.0 /. 12.0) (Resilience.stranded_by_node_failure net 1);
  (* Leaf node 0: only its own traffic: 6/12. *)
  feq "leaf node" 0.5 (Resilience.stranded_by_node_failure net 0)

let test_worst_link () =
  let net = line_net () in
  let r = Resilience.worst_link net in
  Alcotest.(check (pair int int)) "middle link is worst" (1, 2) r.Resilience.link;
  Alcotest.(check bool) "bridge flagged" true r.Resilience.is_bridge;
  feq "stranded" (8.0 /. 12.0) r.Resilience.stranded_fraction

let test_link_reports_sorted () =
  let net = line_net () in
  let reports = Resilience.link_reports net in
  Alcotest.(check int) "all links" 3 (List.length reports);
  let rec desc = function
    | a :: (b :: _ as rest) ->
      a.Resilience.stranded_fraction >= b.Resilience.stranded_fraction && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (desc reports);
  (* Load fractions sum to 1. *)
  let total =
    List.fold_left (fun acc r -> acc +. r.Resilience.load_fraction) 0.0 reports
  in
  feq "load fractions" 1.0 total

let test_worst_link_no_edges () =
  let ctx =
    Context.of_points_and_populations [| Point.make 0.0 0.0 |] [| 1.0 |]
  in
  let net = Network.build ctx (Graph.create 1) in
  Alcotest.check_raises "no links"
    (Invalid_argument "Resilience.worst_link: network has no links") (fun () ->
      ignore (Resilience.worst_link net))

let test_synthesized_network_reports () =
  (* End-to-end: a synthesized network's reports are internally consistent. *)
  let cfg =
    {
      (Cold.Synthesis.default_config ~params:(Cold.Cost.params ~k2:4e-4 ()) ()) with
      Cold.Synthesis.ga =
        {
          Cold.Ga.default_settings with
          Cold.Ga.population_size = 24;
          generations = 15;
          num_saved = 6;
          num_crossover = 12;
          num_mutation = 6;
        };
      heuristic_permutations = 2;
    }
  in
  let net = Cold.Synthesis.synthesize cfg (Context.default_spec ~n:12) ~seed:3 in
  List.iter
    (fun r ->
      Alcotest.(check bool) "fraction in [0,1]" true
        (r.Resilience.stranded_fraction >= 0.0 && r.Resilience.stranded_fraction <= 1.0);
      (* Bridges strand traffic; non-bridges strand none. *)
      if r.Resilience.is_bridge then
        Alcotest.(check bool) "bridge strands" true (r.Resilience.stranded_fraction > 0.0)
      else
        Alcotest.(check (float 1e-9)) "non-bridge strands nothing" 0.0
          r.Resilience.stranded_fraction)
    (Resilience.link_reports net)

(* --- survivability backfill ------------------------------------------------ *)

let bits = Int64.bits_of_float

let test_node_cut_dominates_link_cut () =
  (* Failing a node strands at least as much as failing any one of its
     links: the node failure removes that link AND the node's own traffic. *)
  List.iter
    (fun net ->
      Cold_graph.Graph.iter_edges net.Network.graph (fun u v ->
          let link = Resilience.stranded_by_link_failure net u v in
          Alcotest.(check bool) "node u >= link" true
            (Resilience.stranded_by_node_failure net u >= link);
          Alcotest.(check bool) "node v >= link" true
            (Resilience.stranded_by_node_failure net v >= link)))
    [ line_net (); ring_net () ];
  (* And strictly more on the line: the middle link strands 8/12, but its
     endpoint nodes strand 10/12 — the asymmetry is the endpoint's own
     demand. *)
  let net = line_net () in
  Alcotest.(check bool) "strict on the line" true
    (Resilience.stranded_by_node_failure net 1
    > Resilience.stranded_by_link_failure net 1 2)

let test_survivability_empty_failure_is_baseline () =
  (* An empty failure set must reproduce the baseline routing bit for bit:
     same CSR + Dijkstra + accumulate path as Network.build took. *)
  List.iter
    (fun net ->
      let r =
        Cold_net.Survivability.evaluate net ~down_nodes:[] ~down_links:[]
      in
      Alcotest.(check int) "nothing down" 0
        (r.Cold_net.Survivability.down_node_count
        + r.Cold_net.Survivability.down_link_count
        + r.Cold_net.Survivability.failed_pairs
        + r.Cold_net.Survivability.disconnected_pairs);
      Alcotest.(check bool) "all delivered" true
        (r.Cold_net.Survivability.delivered_fraction = 1.0);
      Alcotest.(check bool) "nothing lost" true
        (r.Cold_net.Survivability.lost_fraction = 0.0);
      Alcotest.(check bool) "stretch exactly 1" true
        (r.Cold_net.Survivability.stretch = 1.0);
      let ctx = net.Network.context in
      let vl =
        Cold_net.Routing.total_volume_length net.Network.loads
          ~length:(fun u v -> Context.distance ctx u v)
      in
      Alcotest.(check int64) "volume-length bit-identical to baseline"
        (bits vl)
        (bits r.Cold_net.Survivability.routed_volume_length);
      (* ... which is exactly the k2 = 1 bandwidth term of the cost model. *)
      let b =
        Cold.Cost.evaluate_breakdown
          (Cold.Cost.params ~k0:0.0 ~k1:0.0 ~k2:1.0 ())
          ctx net.Network.graph
      in
      Alcotest.(check int64) "equals the k2=1 cost term" (bits vl)
        (bits b.Cold.Cost.bandwidth))
    [ line_net (); ring_net () ]

let test_regional_cut_all_or_nothing () =
  (* A correlated cut big enough downs every PoP (nothing delivered, no
     surviving pair to disconnect); rate 0 downs nobody (baseline). *)
  let net = ring_net () in
  let ctx = net.Network.context in
  let all =
    Cold_sim.Failure.generate
      ~rates:{ Cold_sim.Failure.link_rate = 0.0; node_rate = 0.0;
               regional_rate = 1.0; regional_radius = 100.0 }
      ~steps:3 ctx ~seed:5
  in
  Array.iter
    (fun r ->
      Alcotest.(check int) "all PoPs down" 4 r.Cold_net.Survivability.down_node_count;
      Alcotest.(check bool) "nothing delivered" true
        (r.Cold_net.Survivability.delivered_fraction = 0.0);
      Alcotest.(check int) "all pairs failed" 6 r.Cold_net.Survivability.failed_pairs;
      Alcotest.(check int) "no survivors to disconnect" 0
        r.Cold_net.Survivability.disconnected_pairs)
    (Cold_sim.Failure.evaluate net all);
  let none =
    Cold_sim.Failure.generate
      ~rates:{ Cold_sim.Failure.link_rate = 0.0; node_rate = 0.0;
               regional_rate = 0.0; regional_radius = 100.0 }
      ~steps:3 ctx ~seed:5
  in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "baseline delivery" true
        (r.Cold_net.Survivability.delivered_fraction = 1.0))
    (Cold_sim.Failure.evaluate net none)

let () =
  Alcotest.run "cold_resilience"
    [
      ( "resilience",
        [
          Alcotest.test_case "link failure fractions" `Quick test_link_failure_fractions;
          Alcotest.test_case "ring survivable" `Quick test_ring_is_survivable;
          Alcotest.test_case "path not survivable" `Quick test_path_not_survivable;
          Alcotest.test_case "node failure" `Quick test_node_failure;
          Alcotest.test_case "worst link" `Quick test_worst_link;
          Alcotest.test_case "reports sorted" `Quick test_link_reports_sorted;
          Alcotest.test_case "no edges" `Quick test_worst_link_no_edges;
          Alcotest.test_case "synthesized consistency" `Quick
            test_synthesized_network_reports;
        ] );
      ( "survivability",
        [
          Alcotest.test_case "node cut dominates link cut" `Quick
            test_node_cut_dominates_link_cut;
          Alcotest.test_case "empty failure is baseline" `Quick
            test_survivability_empty_failure_is_baseline;
          Alcotest.test_case "regional all-or-nothing" `Quick
            test_regional_cut_all_or_nothing;
        ] );
    ]
