(* Tests for Cold_graph.Robustness (bridges, articulation points, k-cores)
   and Cold_metrics.Spectral. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Robustness = Cold_graph.Robustness
module Traversal = Cold_graph.Traversal
module Spectral = Cold_metrics.Spectral
module Prng = Cold_prng.Prng

let feq2 = Alcotest.(check (float 1e-2))

(* --- bridges ------------------------------------------------------------- *)

let test_bridges_tree () =
  (* Every edge of a tree is a bridge. *)
  let g = Builders.path 6 in
  Alcotest.(check (list (pair int int))) "all edges"
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
    (Robustness.bridges g)

let test_bridges_cycle () =
  Alcotest.(check (list (pair int int))) "none" [] (Robustness.bridges (Builders.cycle 6))

let test_bridges_mixed () =
  (* Triangle with a pendant: only the pendant edge is a bridge. *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check (list (pair int int))) "pendant only" [ (2, 3) ] (Robustness.bridges g)

let test_bridges_two_cycles_joined () =
  (* Two triangles joined by one edge: that edge is the only bridge. *)
  let g =
    Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ]
  in
  Alcotest.(check (list (pair int int))) "joining edge" [ (2, 3) ] (Robustness.bridges g)

let test_bridges_disconnected () =
  let g = Graph.of_edges 5 [ (0, 1); (2, 3); (3, 4) ] in
  Alcotest.(check (list (pair int int))) "per component"
    [ (0, 1); (2, 3); (3, 4) ] (Robustness.bridges g)

let test_bridges_tiny () =
  (* Degenerate sizes: no edges means no bridges; K2's only edge is one. *)
  Alcotest.(check (list (pair int int))) "empty graph" [] (Robustness.bridges (Graph.create 0));
  Alcotest.(check (list (pair int int))) "single node" [] (Robustness.bridges (Graph.create 1));
  Alcotest.(check (list (pair int int))) "two isolated" [] (Robustness.bridges (Graph.create 2));
  Alcotest.(check (list (pair int int))) "single edge" [ (0, 1) ]
    (Robustness.bridges (Graph.of_edges 2 [ (0, 1) ]))

let test_disjoint_cycles_self_contained () =
  (* Two disjoint triangles: each component is 2-edge-connected on its own,
     so no bridges and no articulation points anywhere — disconnection does
     not manufacture cut structure. *)
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ] in
  Alcotest.(check (list (pair int int))) "no bridges" [] (Robustness.bridges g);
  Alcotest.(check (list int)) "no articulation points" []
    (Robustness.articulation_points g);
  (* ... yet the graph as a whole is not 2-edge-connected: it is not even
     connected. *)
  Alcotest.(check bool) "still not 2-edge-connected" false
    (Robustness.is_two_edge_connected g)

(* --- articulation points --------------------------------------------------- *)

let test_articulation_star () =
  Alcotest.(check (list int)) "hub" [ 0 ] (Robustness.articulation_points (Builders.star 6))

let test_articulation_cycle () =
  Alcotest.(check (list int)) "none" []
    (Robustness.articulation_points (Builders.cycle 6))

let test_articulation_path () =
  Alcotest.(check (list int)) "inner vertices" [ 1; 2; 3 ]
    (Robustness.articulation_points (Builders.path 5))

let test_articulation_barbell () =
  let g =
    Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ]
  in
  Alcotest.(check (list int)) "both bridge endpoints" [ 2; 3 ]
    (Robustness.articulation_points g)

let test_two_edge_connected () =
  Alcotest.(check bool) "cycle yes" true (Robustness.is_two_edge_connected (Builders.cycle 5));
  Alcotest.(check bool) "tree no" false (Robustness.is_two_edge_connected (Builders.path 4));
  Alcotest.(check bool) "disconnected no" false
    (Robustness.is_two_edge_connected (Graph.create 3));
  Alcotest.(check bool) "trivial yes" true (Robustness.is_two_edge_connected (Graph.create 1));
  Alcotest.(check bool) "clique yes" true (Robustness.is_two_edge_connected (Graph.complete 5))

(* Oracle comparison: brute-force bridge identification by deletion. *)
let test_bridges_oracle () =
  let rng = Prng.create 7 in
  for trial = 0 to 20 do
    let n = 6 + (trial mod 5) in
    let g = Builders.random_tree n rng in
    for _ = 1 to n / 2 do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then Graph.add_edge g u v
    done;
    let brute =
      Graph.fold_edges g
        (fun acc u v ->
          let h = Graph.copy g in
          Graph.remove_edge h u v;
          let (_, k0) = Traversal.connected_components g in
          let (_, k1) = Traversal.connected_components h in
          if k1 > k0 then (u, v) :: acc else acc)
        []
      |> List.rev
    in
    Alcotest.(check (list (pair int int))) "matches deletion oracle" brute
      (Robustness.bridges g)
  done

let test_articulation_oracle () =
  (* Oracle: v is an articulation point iff some pair of other vertices is
     connected in G but separated in G - v. *)
  let rng = Prng.create 8 in
  for trial = 0 to 20 do
    let n = 6 + (trial mod 5) in
    let g = Builders.random_tree n rng in
    for _ = 1 to n / 2 do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then Graph.add_edge g u v
    done;
    let (comp_g, _) = Traversal.connected_components g in
    let brute = ref [] in
    for v = n - 1 downto 0 do
      let h = Graph.copy g in
      Graph.remove_all_edges_of h v;
      let (comp_h, _) = Traversal.connected_components h in
      let separates = ref false in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if a <> v && b <> v && comp_g.(a) = comp_g.(b) && comp_h.(a) <> comp_h.(b)
          then separates := true
        done
      done;
      if !separates then brute := v :: !brute
    done;
    Alcotest.(check (list int)) "matches deletion oracle" !brute
      (Robustness.articulation_points g)
  done

(* --- k-cores ---------------------------------------------------------------- *)

let test_core_numbers () =
  Alcotest.(check (array int)) "path cores" [| 1; 1; 1; 1 |]
    (Robustness.core_number (Builders.path 4));
  Alcotest.(check (array int)) "cycle cores" [| 2; 2; 2; 2; 2 |]
    (Robustness.core_number (Builders.cycle 5));
  Alcotest.(check (array int)) "clique cores" [| 3; 3; 3; 3 |]
    (Robustness.core_number (Graph.complete 4));
  Alcotest.(check (array int)) "isolated" [| 0; 0 |]
    (Robustness.core_number (Graph.create 2))

let test_core_star_with_triangle () =
  (* Triangle 0-1-2 plus leaves off 0: leaves core 1, triangle core 2. *)
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (0, 3); (0, 4); (0, 5) ] in
  Alcotest.(check (array int)) "cores" [| 2; 2; 2; 1; 1; 1 |] (Robustness.core_number g)

let test_k_core_members () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (0, 3); (0, 4); (0, 5) ] in
  Alcotest.(check (list int)) "2-core" [ 0; 1; 2 ] (Robustness.k_core g ~k:2);
  Alcotest.(check (list int)) "1-core is all" [ 0; 1; 2; 3; 4; 5 ] (Robustness.k_core g ~k:1);
  Alcotest.(check (list int)) "3-core empty" [] (Robustness.k_core g ~k:3);
  Alcotest.(check int) "degeneracy" 2 (Robustness.degeneracy g)

(* --- spectral ---------------------------------------------------------------- *)

let test_spectral_radius () =
  (* d-regular graphs: radius d. *)
  feq2 "cycle (2-regular)" 2.0 (Spectral.spectral_radius (Builders.cycle 8));
  feq2 "K5 (4-regular)" 4.0 (Spectral.spectral_radius (Graph.complete 5));
  (* Star on n: sqrt(n-1). *)
  feq2 "star" (sqrt 8.0) (Spectral.spectral_radius (Builders.star 9));
  feq2 "edgeless" 0.0 (Spectral.spectral_radius (Graph.create 5))

let test_algebraic_connectivity () =
  (* K_n: lambda2 = n. *)
  feq2 "K4" 4.0 (Spectral.algebraic_connectivity (Graph.complete 4));
  (* Path P_n: 2(1 - cos(pi/n)). *)
  feq2 "P4" (2.0 *. (1.0 -. cos (Float.pi /. 4.0)))
    (Spectral.algebraic_connectivity (Builders.path 4));
  (* Star S_n: 1. *)
  feq2 "star" 1.0 (Spectral.algebraic_connectivity (Builders.star 7));
  (* Disconnected: 0. *)
  feq2 "disconnected" 0.0
    (Spectral.algebraic_connectivity (Graph.of_edges 4 [ (0, 1); (2, 3) ]))

let test_algebraic_connectivity_ordering () =
  (* More connectivity, larger lambda2: cycle > path on the same n. *)
  let c = Spectral.algebraic_connectivity (Builders.cycle 10) in
  let p = Spectral.algebraic_connectivity (Builders.path 10) in
  Alcotest.(check bool) "cycle beats path" true (c > p)

let qcheck_core_le_degree =
  QCheck.Test.make ~name:"core number <= degree" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g = Graph.create 10 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) pairs;
      let core = Robustness.core_number g in
      Array.for_all Fun.id (Array.mapi (fun v c -> c <= Graph.degree g v) core))

let qcheck_bridge_count_le_edges =
  QCheck.Test.make ~name:"bridges form a subset of edges" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g = Graph.create 10 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) pairs;
      List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Robustness.bridges g))

let () =
  Alcotest.run "cold_robustness"
    [
      ( "bridges",
        [
          Alcotest.test_case "tree" `Quick test_bridges_tree;
          Alcotest.test_case "cycle" `Quick test_bridges_cycle;
          Alcotest.test_case "paw" `Quick test_bridges_mixed;
          Alcotest.test_case "barbell" `Quick test_bridges_two_cycles_joined;
          Alcotest.test_case "disconnected" `Quick test_bridges_disconnected;
          Alcotest.test_case "tiny graphs" `Quick test_bridges_tiny;
          Alcotest.test_case "disjoint cycles" `Quick test_disjoint_cycles_self_contained;
          Alcotest.test_case "deletion oracle" `Quick test_bridges_oracle;
        ] );
      ( "articulation",
        [
          Alcotest.test_case "star" `Quick test_articulation_star;
          Alcotest.test_case "cycle" `Quick test_articulation_cycle;
          Alcotest.test_case "path" `Quick test_articulation_path;
          Alcotest.test_case "barbell" `Quick test_articulation_barbell;
          Alcotest.test_case "two-edge-connected" `Quick test_two_edge_connected;
          Alcotest.test_case "deletion oracle" `Quick test_articulation_oracle;
        ] );
      ( "k_core",
        [
          Alcotest.test_case "known cores" `Quick test_core_numbers;
          Alcotest.test_case "triangle + leaves" `Quick test_core_star_with_triangle;
          Alcotest.test_case "members" `Quick test_k_core_members;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "radius" `Quick test_spectral_radius;
          Alcotest.test_case "algebraic connectivity" `Quick test_algebraic_connectivity;
          Alcotest.test_case "ordering" `Quick test_algebraic_connectivity_ordering;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_core_le_degree;
          QCheck_alcotest.to_alcotest qcheck_bridge_count_le_edges;
        ] );
    ]
