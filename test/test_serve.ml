(* Tests for the cold_serve daemon stack: the pure Protocol codec, the
   Service determinism/replay contract, and wire-level robustness of the
   Server accept loop over a loopback ephemeral port. *)

module P = Cold_serve.Protocol
module Service = Cold_serve.Service
module Server = Cold_serve.Server

(* --- protocol codec (pure, no daemon) ---------------------------------------- *)

let parse_ok line =
  match P.parse line with
  | Ok env -> env
  | Error (_, msg) -> Alcotest.failf "parse %S failed: %s" line msg

let parse_err line =
  match P.parse line with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" line
  | Error (id, msg) -> (id, msg)

let test_parse_basics () =
  let env = parse_ok "ping p1" in
  Alcotest.(check string) "id echoed" "p1" env.P.id;
  Alcotest.(check bool) "ping body" true (env.P.body = P.Ping);
  Alcotest.(check bool) "stats body" true
    ((parse_ok "stats s1").P.body = P.Stats);
  Alcotest.(check bool) "drain body" true
    ((parse_ok "drain d1").P.body = P.Drain);
  (* Whitespace runs and tabs are token separators; CR handling lives in
     the server's line splitter. *)
  let env = parse_ok "synth  j1\tn=12  seed=7" in
  (match env.P.body with
  | P.Job (P.Synth { design; format }) ->
    Alcotest.(check int) "n" 12 design.P.n;
    Alcotest.(check int) "seed" 7 design.P.seed;
    Alcotest.(check int) "default gens" 20 design.P.generations;
    Alcotest.(check bool) "default format" true (format = P.Summary)
  | _ -> Alcotest.fail "expected synth job");
  let env = parse_ok "synth j2 n=12 seed=7 deadline_ms=250" in
  Alcotest.(check (option int)) "deadline" (Some 250) env.P.deadline_ms

let test_parse_rejections () =
  let msg_of line = snd (parse_err line) in
  Alcotest.(check string) "lonely verb" "missing request id"
    (msg_of "garbage");
  (* The id is echoed once the line got far enough to contain one. *)
  Alcotest.(check string) "typo key carries id" "j1"
    (fst (parse_err "synth j1 n=12 seed=7 stepz=5"));
  Alcotest.(check bool) "unknown key named" true
    (let msg = msg_of "synth j1 n=12 seed=7 stepz=5" in
     String.length msg > 0 && msg <> "");
  Alcotest.(check string) "missing seed" "missing required seed="
    (msg_of "synth j1 n=12");
  Alcotest.(check string) "n out of range" "n out of range [2, 2000]"
    (msg_of "synth j1 n=99999 seed=7");
  Alcotest.(check string) "bad number" "n is not an integer"
    (msg_of "synth j1 n=twelve seed=7");
  Alcotest.(check bool) "unknown format" true
    (String.length (msg_of "synth j1 n=12 seed=7 format=dot") > 0);
  Alcotest.(check bool) "bare token is not key=value" true
    (msg_of "synth j1 n=12 seed=7 fast" = "parameters must be key=value tokens");
  Alcotest.(check bool) "oversized id rejected" true
    (let id = String.make 65 'a' in
     fst (parse_err ("ping " ^ id)) = "-");
  Alcotest.(check bool) "unknown verb" true
    (String.length (msg_of "frobnicate x1") > 0)

let test_canonical_job () =
  let job line =
    match (parse_ok line).P.body with
    | P.Job j -> j
    | _ -> Alcotest.fail "expected a job"
  in
  (* Key order and default-vs-explicit spelling do not change identity. *)
  let a = job "synth j1 seed=7 n=12" in
  let b = job "synth j2 n=12 seed=7 gens=20 pop=16 perms=2 survivable=0" in
  Alcotest.(check string) "defaults canonicalize" (P.canonical_job a)
    (P.canonical_job b);
  (* A different parameter is a different identity. *)
  let c = job "synth j3 n=12 seed=7 gens=21" in
  Alcotest.(check bool) "distinct budgets distinct" false
    (String.equal (P.canonical_job a) (P.canonical_job c));
  (* Float spellings that denote the same double canonicalize together. *)
  let d = job "synth j4 n=12 seed=7 k2=1e-4" in
  let e = job "synth j5 n=12 seed=7 k2=0.0001" in
  Alcotest.(check string) "float spellings" (P.canonical_job d)
    (P.canonical_job e)

let test_framing () =
  Alcotest.(check string) "ok frame" "ok j1 5\npong\n"
    (P.frame_ok ~id:"j1" "pong\n");
  Alcotest.(check string) "err frame is one line" "err j1 parse a b\n"
    (P.frame_err ~id:"j1" ~code:"parse" "a\nb");
  Alcotest.(check string) "json integer float" "3.0" (P.json_float 3.0);
  Alcotest.(check string) "json short float" "0.1" (P.json_float 0.1);
  let x = 0.1 +. 0.2 in
  Alcotest.(check bool) "json float round-trips" true
    (Float.equal (float_of_string (P.json_float x)) x)

(* --- service determinism (no sockets) ---------------------------------------- *)

let synth_job ?(format = P.Edges) ?(n = 12) ?(seed = 7) () =
  match P.parse (Printf.sprintf "synth j n=%d seed=%d gens=5 pop=8 perms=1 format=%s"
                   n seed (P.format_name format))
  with
  | Ok { P.body = P.Job j; _ } -> j
  | _ -> Alcotest.fail "bad fixture line"

let respond_exn svc job =
  match Service.respond svc job with
  | Ok payload -> payload
  | Error msg -> Alcotest.failf "respond failed: %s" msg

let test_service_replay_across_domains () =
  (* Acceptance criterion: bit-identical payloads cold, cached, and after a
     restart, at every pool size. *)
  let reference = ref None in
  List.iter
    (fun domains ->
      let svc = Service.create ~domains ~cache_slots:64 () in
      Fun.protect
        ~finally:(fun () -> Service.shutdown svc)
        (fun () ->
          let job = synth_job () in
          let cold = respond_exn svc job in
          let cached = respond_exn svc job in
          Alcotest.(check string)
            (Printf.sprintf "cached identical at %d domains" domains)
            cold cached;
          (match !reference with
          | None -> reference := Some cold
          | Some r ->
            Alcotest.(check string)
              (Printf.sprintf "domains=%d matches domains=1" domains)
              r cold);
          (* A fresh service is a restart: no cache, same bytes. *)
          let svc2 = Service.create ~domains ~cache_slots:64 () in
          Fun.protect
            ~finally:(fun () -> Service.shutdown svc2)
            (fun () ->
              Alcotest.(check string)
                (Printf.sprintf "restart identical at %d domains" domains)
                cold (respond_exn svc2 job))))
    [ 1; 2; 4; 8 ]

let test_service_formats_and_cache () =
  let svc = Service.create ~domains:1 ~cache_slots:64 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let edges = respond_exn svc (synth_job ~format:P.Edges ()) in
      let gml = respond_exn svc (synth_job ~format:P.Gml ()) in
      let summary = respond_exn svc (synth_job ~format:P.Summary ()) in
      Alcotest.(check bool) "edges non-empty" true (String.length edges > 0);
      Alcotest.(check bool) "gml tagged" true
        (String.length gml > 5 && String.sub gml 0 5 = "graph");
      Alcotest.(check bool) "summary is json" true (summary.[0] = '{');
      (* Three formats of the same design are three cache entries. *)
      Alcotest.(check int) "entries" 3 (Service.cache_entries svc);
      ignore (respond_exn svc (synth_job ~format:P.Edges ()));
      let stats = Service.stats_json svc ~queue_depth:0 in
      Alcotest.(check bool) "stats counts a hit" true
        (let needle = "\"hits\":1" in
         let rec find i =
           i + String.length needle <= String.length stats
           && (String.sub stats i (String.length needle) = needle
              || find (i + 1))
         in
         find 0))

(* --- wire-level robustness ----------------------------------------------------- *)

(* Minimal blocking client over the loopback port. *)
type client = { fd : Unix.file_descr; mutable rbuf : string }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; rbuf = "" }

let send_raw c s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      let w = Unix.write c.fd b off len in
      go (off + w) (len - w)
    end
  in
  go 0 (Bytes.length b)

let send_line c line = send_raw c (line ^ "\n")
let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let fill c =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> raise End_of_file
  | n -> c.rbuf <- c.rbuf ^ Bytes.sub_string chunk 0 n

let read_line c =
  let rec go () =
    match String.index_opt c.rbuf '\n' with
    | Some i ->
      let line = String.sub c.rbuf 0 i in
      c.rbuf <- String.sub c.rbuf (i + 1) (String.length c.rbuf - i - 1);
      line
    | None ->
      fill c;
      go ()
  in
  go ()

let read_exact c n =
  while String.length c.rbuf < n do
    fill c
  done;
  let s = String.sub c.rbuf 0 n in
  c.rbuf <- String.sub c.rbuf n (String.length c.rbuf - n);
  s

(* One response frame: [`Ok (id, payload)] or [`Err (id, code, msg)]. *)
let read_frame c =
  let header = read_line c in
  match String.split_on_char ' ' header with
  | "ok" :: id :: len :: [] -> `Ok (id, read_exact c (int_of_string len))
  | "err" :: id :: code :: rest -> `Err (id, code, String.concat " " rest)
  | _ -> Alcotest.failf "unparseable frame header %S" header

let expect_err c ~id ~code =
  match read_frame c with
  | `Err (eid, ecode, _) ->
    Alcotest.(check string) "err id" id eid;
    Alcotest.(check string) "err code" code ecode
  | `Ok (oid, _) -> Alcotest.failf "expected err %s, got ok %s" code oid

let expect_ok c ~id =
  match read_frame c with
  | `Ok (oid, payload) ->
    Alcotest.(check string) "ok id" id oid;
    payload
  | `Err (eid, code, msg) ->
    Alcotest.failf "expected ok %s, got err %s %s %s" id eid code msg

let with_server ?(domains = 1) ?(queue_capacity = 64) ?(cache_slots = 256) f =
  let cfg =
    { Server.default_config with Server.domains; queue_capacity; cache_slots }
  in
  match Server.create cfg with
  | Error msg -> Alcotest.failf "server create failed: %s" msg
  | Ok server ->
    let runner = Domain.spawn (fun () -> Server.run server) in
    Fun.protect
      ~finally:(fun () ->
        Server.request_drain server;
        Domain.join runner)
      (fun () -> f (Server.port server))

let fast_synth ~id ~seed fmt =
  Printf.sprintf "synth %s n=12 seed=%d gens=5 pop=8 perms=1 format=%s" id seed
    fmt

let test_wire_robustness () =
  with_server (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          (* Malformed lines answer inline and leave the connection usable. *)
          send_line c "garbage";
          expect_err c ~id:"-" ~code:"parse";
          send_line c "synth j1 n=12";
          expect_err c ~id:"j1" ~code:"parse";
          send_line c "synth j2 n=12 seed=7 format=dot";
          expect_err c ~id:"j2" ~code:"parse";
          send_line c "ping p1";
          Alcotest.(check string) "still serving" "pong\n"
            (expect_ok c ~id:"p1");
          (* An oversized request line is refused and the connection torn
             down: the next read sees EOF. *)
          send_raw c (String.make 5000 'x');
          expect_err c ~id:"-" ~code:"oversized";
          Alcotest.(check bool) "connection closed" true
            (match read_frame c with
            | exception End_of_file -> true
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
            | _ -> false));
      (* A truncated connection (partial line, then close) must not hurt
         the daemon. *)
      let t = connect port in
      send_raw t "synth half-a-requ";
      close_client t;
      let c2 = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c2)
        (fun () ->
          send_line c2 "ping p2";
          Alcotest.(check string) "survives truncation" "pong\n"
            (expect_ok c2 ~id:"p2")))

let test_wire_shed_and_drain () =
  (* queue_capacity = 0 sheds every job deterministically. *)
  with_server ~queue_capacity:0 (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          send_line c (fast_synth ~id:"s1" ~seed:1 "edges");
          expect_err c ~id:"s1" ~code:"shed"));
  with_server (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          (* One write, three lines: the accept loop dispatches them in
             order within a single read, so the job keeps the server alive
             past the drain and s2 deterministically sees [draining]. *)
          send_raw c
            (fast_synth ~id:"j" ~seed:1 "edges"
            ^ "\ndrain d1\n"
            ^ fast_synth ~id:"s2" ~seed:2 "edges"
            ^ "\n");
          let seen = Hashtbl.create 4 in
          for _ = 1 to 3 do
            match read_frame c with
            | `Ok (id, payload) -> Hashtbl.replace seen id (`Ok payload)
            | `Err (id, code, _) -> Hashtbl.replace seen id (`Err code)
          done;
          Alcotest.(check bool) "admitted job answered" true
            (match Hashtbl.find_opt seen "j" with
            | Some (`Ok p) -> String.length p > 0
            | _ -> false);
          Alcotest.(check bool) "drain acked" true
            (Hashtbl.find_opt seen "d1" = Some (`Ok "draining\n"));
          Alcotest.(check bool) "post-drain job refused" true
            (Hashtbl.find_opt seen "s2" = Some (`Err "draining"))))

let test_wire_duplicate_inflight () =
  (* Two identical jobs racing through the scheduler — whether the second
     hits the cache or both compute, the bytes must be identical. *)
  with_server ~domains:2 (fun port ->
      let a = connect port and b = connect port in
      Fun.protect
        ~finally:(fun () ->
          close_client a;
          close_client b)
        (fun () ->
          send_line a (fast_synth ~id:"dup" ~seed:42 "edges");
          send_line b (fast_synth ~id:"dup" ~seed:42 "edges");
          let pa = expect_ok a ~id:"dup" in
          let pb = expect_ok b ~id:"dup" in
          Alcotest.(check string) "duplicate in-flight identical bytes" pa pb))

let test_wire_replay () =
  (* The wire-level face of the replay contract: same request, same frame
     bytes, cold and cached, across server restarts. *)
  let payload_of port line =
    let c = connect port in
    Fun.protect
      ~finally:(fun () -> close_client c)
      (fun () ->
        send_line c line;
        expect_ok c ~id:"r1")
  in
  let line = fast_synth ~id:"r1" ~seed:99 "gml" in
  let first = ref None in
  List.iter
    (fun domains ->
      with_server ~domains (fun port ->
          let cold = payload_of port line in
          let cached = payload_of port line in
          Alcotest.(check string) "cached replay" cold cached;
          match !first with
          | None -> first := Some cold
          | Some r ->
            Alcotest.(check string)
              (Printf.sprintf "restart at %d domains" domains)
              r cold))
    [ 1; 2 ]

let () =
  Alcotest.run "cold_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse basics" `Quick test_parse_basics;
          Alcotest.test_case "parse rejections" `Quick test_parse_rejections;
          Alcotest.test_case "canonical job" `Quick test_canonical_job;
          Alcotest.test_case "framing" `Quick test_framing;
        ] );
      ( "service",
        [
          Alcotest.test_case "replay across domains" `Quick
            test_service_replay_across_domains;
          Alcotest.test_case "formats and cache" `Quick
            test_service_formats_and_cache;
        ] );
      ( "wire",
        [
          Alcotest.test_case "robustness" `Quick test_wire_robustness;
          Alcotest.test_case "shed and drain" `Quick test_wire_shed_and_drain;
          Alcotest.test_case "duplicate in-flight" `Quick
            test_wire_duplicate_inflight;
          Alcotest.test_case "replay over the wire" `Quick test_wire_replay;
        ] );
    ]
