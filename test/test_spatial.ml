(* The spatial grid index must agree with brute force on every query — the
   locality operators and Distmat.nearest stand on that equivalence. The
   sweeps below cover the inputs that stress a bucket grid: uniform scatter,
   tight clusters (many points per cell), co-located points (one cell holds
   everything, ties everywhere), and collinear layouts (a degenerate axis
   collapses to a single row). *)

module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Spatial = Cold_geom.Spatial
module Distmat = Cold_geom.Distmat

(* --- point clouds ------------------------------------------------------- *)

let uniform rng n =
  Array.init n (fun _ -> Point.make (Prng.float rng) (Prng.float rng))

let clustered rng n =
  let centers =
    Array.init (max 1 (n / 10)) (fun _ ->
        Point.make (Prng.float rng) (Prng.float rng))
  in
  Array.init n (fun _ ->
      let c = centers.(Prng.int rng (Array.length centers)) in
      Point.make
        (c.Point.x +. (0.01 *. Prng.float rng))
        (c.Point.y +. (0.01 *. Prng.float rng)))

let colocated rng n =
  (* Half the points share one location exactly; the rest scatter. *)
  let anchor = Point.make (Prng.float rng) (Prng.float rng) in
  Array.init n (fun i ->
      if i mod 2 = 0 then anchor
      else Point.make (Prng.float rng) (Prng.float rng))

let collinear rng n =
  Array.init n (fun _ -> Point.make (Prng.float rng) 0.25)

let clouds rng n =
  [ ("uniform", uniform rng n); ("clustered", clustered rng n);
    ("colocated", colocated rng n); ("collinear", collinear rng n) ]

(* --- brute-force references -------------------------------------------- *)

(* Mirrors the spatial index's contract exactly: minimize (distance, index)
   lexicographically, skipping self and excepted points. *)
let brute_nearest pts i ~except =
  let best = ref None in
  Array.iteri
    (fun j q ->
      if j <> i && not (except j) then begin
        let d = Point.distance pts.(i) q in
        match !best with
        | None -> best := Some (d, j)
        | Some (bd, _) -> if d < bd then best := Some (d, j)
      end)
    pts;
  Option.map snd !best

let brute_k_nearest pts i ~k ~except =
  let cand = ref [] in
  Array.iteri
    (fun j q ->
      if j <> i && not (except j) then
        cand := (Point.distance pts.(i) q, j) :: !cand)
    pts;
  let sorted =
    List.sort
      (fun (d, j) (d', j') ->
        match Float.compare d d' with 0 -> Int.compare j j' | c -> c)
      !cand
  in
  Array.of_list (List.map snd (List.filteri (fun idx _ -> idx < k) sorted))

let brute_within pts i ~radius =
  let acc = ref [] in
  Array.iteri
    (fun j q ->
      if j <> i && Point.distance pts.(i) q <= radius then acc := j :: !acc)
    pts;
  List.rev !acc

(* --- sweeps ------------------------------------------------------------- *)

let int_array = Alcotest.(array int)
let int_list = Alcotest.(list int)

let test_nearest_matches_brute () =
  let rng = Prng.create 101 in
  List.iter
    (fun n ->
      List.iter
        (fun (label, pts) ->
          let t = Spatial.create pts in
          let except_none _ = false in
          let except_even j = j mod 2 = 0 in
          for i = 0 to n - 1 do
            List.iter
              (fun (elabel, except) ->
                Alcotest.(check (option int))
                  (Printf.sprintf "%s n=%d i=%d %s" label n i elabel)
                  (brute_nearest pts i ~except)
                  (Spatial.nearest t i ~except))
              [ ("all", except_none); ("odd-only", except_even) ]
          done)
        (clouds rng n))
    [ 1; 2; 7; 40; 150 ]

let test_k_nearest_matches_brute () =
  let rng = Prng.create 202 in
  List.iter
    (fun n ->
      List.iter
        (fun (label, pts) ->
          let t = Spatial.create pts in
          List.iter
            (fun k ->
              for i = 0 to min (n - 1) 60 do
                Alcotest.check int_array
                  (Printf.sprintf "%s n=%d k=%d i=%d" label n k i)
                  (brute_k_nearest pts i ~k ~except:(fun _ -> false))
                  (Spatial.k_nearest t i ~k)
              done)
            [ 1; 3; 8; n + 5 ])
        (clouds rng n))
    [ 1; 6; 33; 120 ]

let test_k_nearest_except () =
  let rng = Prng.create 303 in
  let pts = clustered rng 80 in
  let t = Spatial.create pts in
  let except j = j mod 3 = 0 in
  for i = 0 to 79 do
    Alcotest.check int_array
      (Printf.sprintf "except i=%d" i)
      (brute_k_nearest pts i ~k:6 ~except)
      (Spatial.k_nearest ~except t i ~k:6)
  done

let test_within_matches_brute () =
  let rng = Prng.create 404 in
  List.iter
    (fun n ->
      List.iter
        (fun (label, pts) ->
          let t = Spatial.create pts in
          List.iter
            (fun radius ->
              for i = 0 to min (n - 1) 50 do
                Alcotest.check int_list
                  (Printf.sprintf "%s n=%d r=%.3f i=%d" label n radius i)
                  (brute_within pts i ~radius)
                  (Spatial.within t i ~radius)
              done)
            [ 0.0; 0.05; 0.3; 2.0 ])
        (clouds rng n))
    [ 2; 25; 90 ]

let test_bounds () =
  let t = Spatial.create (uniform (Prng.create 1) 5) in
  Alcotest.(check int) "size" 5 (Spatial.size t);
  Alcotest.check_raises "nearest oob" (Invalid_argument "Spatial.nearest")
    (fun () -> ignore (Spatial.nearest t 5 ~except:(fun _ -> false)));
  Alcotest.check_raises "k_nearest oob" (Invalid_argument "Spatial.k_nearest")
    (fun () -> ignore (Spatial.k_nearest t (-1) ~k:2));
  Alcotest.check_raises "negative k"
    (Invalid_argument "Spatial.k_nearest: negative k") (fun () ->
      ignore (Spatial.k_nearest t 0 ~k:(-1)));
  Alcotest.(check int) "k=0" 0 (Array.length (Spatial.k_nearest t 0 ~k:0))

(* Distmat.nearest is now grid-backed; nearest_scan is the retained linear
   reference. They must agree on every (index, except) query — same winner,
   same lowest-index tie-break. *)
let test_distmat_grid_equals_scan () =
  let rng = Prng.create 505 in
  List.iter
    (fun n ->
      List.iter
        (fun (label, pts) ->
          let dm = Distmat.of_points pts in
          for i = 0 to n - 1 do
            List.iter
              (fun (elabel, except) ->
                Alcotest.(check (option int))
                  (Printf.sprintf "%s n=%d i=%d %s" label n i elabel)
                  (Distmat.nearest_scan dm i ~except)
                  (Distmat.nearest dm i ~except))
              [ ("all", (fun _ -> false));
                ("thirds", (fun j -> j mod 3 <> 1)) ]
          done)
        (clouds rng n))
    [ 1; 9; 64; 140 ]

let () =
  Alcotest.run "cold_spatial"
    [
      ( "grid",
        [
          Alcotest.test_case "nearest = brute force" `Quick
            test_nearest_matches_brute;
          Alcotest.test_case "k_nearest = brute force" `Quick
            test_k_nearest_matches_brute;
          Alcotest.test_case "k_nearest with except" `Quick
            test_k_nearest_except;
          Alcotest.test_case "within = brute force" `Quick
            test_within_matches_brute;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ( "distmat",
        [
          Alcotest.test_case "grid nearest = linear scan" `Quick
            test_distmat_grid_equals_scan;
        ] );
    ]
